//! The self-healing supervisor, through the real binaries: `campaignd
//! --supervise` spawns its shard fleet, and scripted chaos (`--chaos`)
//! crashes, starves, and hangs the children. Every leg ends in one of the
//! two outcomes determinism invariant 12 allows — a merge byte-identical
//! to the one-shot golden, or an explicit degraded exit (7) whose partial
//! checkpoints `campaign-merge --partial` accounts for per shard.
//!
//! (The in-process twin of this suite — thousands of *random* chaos
//! scripts through `supervise_in_process` — lives in the workspace-level
//! `tests/chaos_campaigns.rs` proptest.)

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const CAMPAIGND: &str = env!("CARGO_BIN_EXE_campaignd");
const MERGE: &str = env!("CARGO_BIN_EXE_campaign-merge");

/// Same small-but-real campaign as `interrupt_resume.rs`: three site
/// classes, four trials each (12 grid points, 6 per shard of 2).
const CONFIG_FLAGS: [&str; 8] = [
    "--instrs",
    "2500",
    "--trials-per-site",
    "4",
    "--seed",
    "42",
    "--sites",
    "int-reg,store-value,pc",
];

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paradet-supervise-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn campaignd(args: &[&str]) -> Output {
    Command::new(CAMPAIGND).args(CONFIG_FLAGS).args(args).output().expect("spawn campaignd")
}

/// One-shot golden: returns `(stdout table, csv bytes)`.
fn golden(dir: &Path) -> (String, Vec<u8>) {
    let path = dir.join("golden.csv");
    let out = campaignd(&["--one-shot", "--out", path.to_str().unwrap()]);
    assert!(out.status.success(), "one-shot failed: {}", stderr_of(&out));
    (stdout_of(&out), std::fs::read(&path).expect("golden csv written"))
}

/// Runs `campaignd --supervise 2` over `dir` with `extra` args and the
/// campaign config, returning its output.
fn supervise(dir: &Path, extra: &[&str]) -> Output {
    let csv = dir.join("supervised.csv");
    Command::new(CAMPAIGND)
        .args(CONFIG_FLAGS)
        .args([
            "--supervise",
            "2",
            "--dir",
            dir.to_str().unwrap(),
            "--checkpoint-every",
            "1",
            "--out",
            csv.to_str().unwrap(),
        ])
        .args(extra)
        .output()
        .expect("spawn campaignd --supervise")
}

/// The no-fault baseline: a supervised fleet over a fresh directory
/// merges — stdout table and CSV bytes — identical to the one-shot.
#[test]
fn clean_supervised_run_merges_byte_identical() {
    let dir = tmpdir("clean");
    std::fs::create_dir_all(&dir).unwrap();
    let (golden_stdout, golden_csv) = golden(&dir);

    let out = supervise(&dir, &[]);
    assert!(out.status.success(), "supervise failed: {}", stderr_of(&out));
    assert_eq!(stdout_of(&out), golden_stdout, "supervised table must match one-shot stdout");
    let csv = std::fs::read(dir.join("supervised.csv")).expect("supervised csv written");
    assert_eq!(golden_csv, csv, "supervised CSV must be byte-identical to the one-shot");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash self-healing: every shard's first incarnation aborts during its
/// first checkpoint write (stranding a `.tmp`, no checkpoint renamed into
/// place). The supervisor must restart both, and the merge must still be
/// byte-identical.
#[test]
fn crashed_shards_are_restarted_and_merge_byte_identical() {
    let dir = tmpdir("crash");
    std::fs::create_dir_all(&dir).unwrap();
    let (_, golden_csv) = golden(&dir);

    let out = supervise(&dir, &["--chaos", "0:abort-ckpt-write@0=0", "--backoff-base-ms", "50"]);
    let log = stderr_of(&out);
    assert!(out.status.success(), "supervise must self-heal the crash: {log}");
    assert!(log.contains("restarting"), "the restarts must be logged: {log}");
    let csv = std::fs::read(dir.join("supervised.csv")).expect("supervised csv written");
    assert_eq!(golden_csv, csv, "post-restart merge must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// ENOSPC self-healing: the first incarnation's first checkpoint write
/// fails with an out-of-space error (exit 1, a *retryable* store error).
/// The restart finds clean state and completes.
#[test]
fn enospc_write_failure_is_retried_to_completion() {
    let dir = tmpdir("enospc");
    std::fs::create_dir_all(&dir).unwrap();
    let (_, golden_csv) = golden(&dir);

    let out = supervise(&dir, &["--chaos", "0:fail-ckpt-write@0", "--backoff-base-ms", "50"]);
    let log = stderr_of(&out);
    assert!(out.status.success(), "supervise must retry past ENOSPC: {log}");
    assert!(log.contains("exit code 1"), "the store-error exit must be logged: {log}");
    let csv = std::fs::read(dir.join("supervised.csv")).expect("supervised csv written");
    assert_eq!(golden_csv, csv);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hang detection: the first incarnation stalls 15 s inside a status
/// write, starving its heartbeat. With a 2 s deadline the supervisor must
/// kill it, restart it (the restart takes over the dead owner's lock and
/// resumes the checkpoint), and merge byte-identical.
#[test]
fn hung_shard_is_killed_restarted_and_merges() {
    let dir = tmpdir("hang");
    std::fs::create_dir_all(&dir).unwrap();
    let (_, golden_csv) = golden(&dir);

    let out = supervise(
        &dir,
        &[
            "--chaos",
            "0:stall-status-write@1=15000",
            "--heartbeat-timeout-ms",
            "2000",
            "--backoff-base-ms",
            "50",
        ],
    );
    let log = stderr_of(&out);
    assert!(out.status.success(), "supervise must recover the hang: {log}");
    assert!(log.contains("heartbeat stale"), "the hang detection must be logged: {log}");
    let csv = std::fs::read(dir.join("supervised.csv")).expect("supervised csv written");
    assert_eq!(golden_csv, csv, "post-hang merge must be byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Quarantine + explicit hand-off: every incarnation of every shard is
/// killed after persisting exactly one trial, so the restart budget (2)
/// is exhausted. The supervised run must exit 7 naming the degraded
/// shards, and `campaign-merge --partial` must render the 2/12 grid
/// points that exist with per-shard `degraded` accounting and a PARTIAL
/// table title — instead of the strict merge's refusal.
#[test]
fn exhausted_restarts_quarantine_and_partial_merge_accounts() {
    let dir = tmpdir("quarantine");
    let dir_s = dir.to_str().unwrap();
    std::fs::create_dir_all(&dir).unwrap();

    // Attempt 0 dies during its 2nd checkpoint write (1 trial persisted);
    // attempts 1 and 2 die during their first (resumed) checkpoint write,
    // so nothing new ever lands.
    let out = supervise(
        &dir,
        &[
            "--chaos",
            "0:abort-ckpt-write@1=0;1:abort-ckpt-write@0=0;2:abort-ckpt-write@0=0",
            "--max-restarts",
            "2",
            "--backoff-base-ms",
            "50",
        ],
    );
    let log = stderr_of(&out);
    assert_eq!(out.status.code(), Some(7), "exhausted restarts must exit DEGRADED: {log}");
    assert!(log.contains("QUARANTINED"), "quarantine must be logged: {log}");
    assert!(log.contains("DEGRADED"), "degraded shards must be named: {log}");
    assert!(log.contains("campaign-merge --partial"), "must point at the hand-off: {log}");
    assert!(!dir.join("supervised.csv").exists(), "a degraded run must not write the CSV");

    // The strict merge still refuses (incomplete, exit 5) …
    let strict = Command::new(MERGE)
        .args(CONFIG_FLAGS)
        .args(["--dir", dir_s])
        .output()
        .expect("spawn campaign-merge");
    assert_eq!(strict.status.code(), Some(5), "strict merge must refuse: {}", stderr_of(&strict));

    // … and --partial is the explicit opt-out: exit 0, per-shard
    // completeness, PARTIAL-titled coverage over what exists.
    let partial = Command::new(MERGE)
        .args(CONFIG_FLAGS)
        .args(["--partial", "--dir", dir_s])
        .output()
        .expect("spawn campaign-merge --partial");
    assert!(partial.status.success(), "partial merge failed: {}", stderr_of(&partial));
    let stdout = stdout_of(&partial);
    assert!(stdout.contains("Shard completeness"), "completeness table missing: {stdout}");
    assert!(stdout.contains("degraded"), "quarantined shards must read degraded: {stdout}");
    assert!(
        stdout.contains("PARTIAL fault-injection coverage"),
        "the partial table must be impossible to mistake for a full campaign: {stdout}"
    );
    assert!(
        stderr_of(&partial).contains("partial merge: 2/12"),
        "exactly one trial per shard survived the chaos: {}",
        stderr_of(&partial)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
