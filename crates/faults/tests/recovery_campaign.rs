//! Determinism and forward-progress gates for recovery campaigns
//! (detect → rollback → re-execute), at every level the service exposes:
//! in-process thread counts, in-process sharding, and the real binaries
//! killed mid-campaign and resumed — plus the v2 schema gate that keeps
//! v1 stores from being silently misread.

use paradet_faults::{
    recovery_table, run_campaign, run_campaign_sharded, CampaignConfig, FaultSite, Outcome,
};
use std::path::PathBuf;
use std::process::{Command, Output};

const CAMPAIGND: &str = env!("CARGO_BIN_EXE_campaignd");
const MERGE: &str = env!("CARGO_BIN_EXE_campaign-merge");

/// The recovery campaign every test here runs: a main-core class, a
/// store-datapath class, and a checker-side class, under the rollback
/// driver.
const CONFIG_FLAGS: [&str; 9] = [
    "--instrs",
    "2500",
    "--trials-per-site",
    "3",
    "--seed",
    "42",
    "--sites",
    "int-reg,store-value,checker-false-pos",
    "--recover",
];

fn small_recovery_cfg() -> CampaignConfig {
    CampaignConfig {
        instrs: 2_500,
        trials_per_site: 3,
        sites: vec![FaultSite::IntReg, FaultSite::StoreValue, FaultSite::CheckerFalsePos],
        recovery: Some(paradet_faults::RecoveryPolicy::default()),
        ..CampaignConfig::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paradet-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The forward-progress gate: over transient fault classes inside the
/// detection sphere, every detected fault must recover (or crash, per
/// §IV-H) — zero unrecoverable trials, zero livelock, and every
/// `Recovered` classification already implies final state ≡ golden (the
/// classifier only hands out that label on bit-identity).
#[test]
fn transient_recovery_campaign_has_no_unrecoverable_trials() {
    let result = run_campaign(&small_recovery_cfg());
    let mut recovered = 0;
    for (site, s) in &result.per_site {
        assert_eq!(
            s.unrecoverable,
            0,
            "{}: transient faults must never be unrecoverable",
            site.name()
        );
        assert_eq!(s.sdc, 0, "{}: in-sphere transients must not escape", site.name());
        recovered += s.recovered;
    }
    assert!(recovered > 0, "the campaign must exercise actual rollbacks");
    for t in &result.trials {
        if let Outcome::Recovered { retries } = t.outcome {
            assert!(retries >= 1, "a recovered trial rolled back at least once");
            assert!(t.recovery_fs.unwrap_or(0) > 0, "recovery time must be charged");
        }
    }
}

/// Determinism invariant 9 at the campaign level: the recovery table is
/// byte-identical at any worker thread count.
#[test]
fn recovery_campaign_is_thread_count_invariant() {
    let cfg = small_recovery_cfg();
    let t1 = paradet_par::with_threads(1, || run_campaign(&cfg));
    let t4 = paradet_par::with_threads(4, || run_campaign(&cfg));
    let r1 = recovery_table(cfg.workload.name(), cfg.fault_kind.name(), &t1).render();
    let r4 = recovery_table(cfg.workload.name(), cfg.fault_kind.name(), &t4).render();
    assert_eq!(r1, r4, "recovery tables must be byte-identical at 1 vs 4 threads");
    for (a, b) in t1.trials.iter().zip(t4.trials.iter()) {
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.recovery_fs, b.recovery_fs);
    }
}

/// Invariant 8 extended to recovery campaigns: a 2-shard store round-trip
/// (checkpoints written, read back, merged) reproduces the one-shot
/// result bit for bit — including the recovery outcomes, retry counts,
/// and recovery latencies that only exist in the v2 record format.
#[test]
fn two_shard_recovery_campaign_merges_byte_identical() {
    let cfg = small_recovery_cfg();
    let one_shot = run_campaign(&cfg);
    let dir = tmpdir("shard2");
    let merged = run_campaign_sharded(&cfg, 2, &dir).expect("sharded run");
    assert_eq!(one_shot.trials.len(), merged.trials.len());
    for (a, b) in one_shot.trials.iter().zip(merged.trials.iter()) {
        assert_eq!(a.site, b.site);
        assert_eq!(a.fault, b.fault);
        assert_eq!(a.outcome, b.outcome, "outcomes must survive the store round-trip");
        assert_eq!(a.detect_latency, b.detect_latency);
        assert_eq!(a.recovery_fs, b.recovery_fs, "v2 recovery fields must survive");
    }
    let t_one = recovery_table(cfg.workload.name(), cfg.fault_kind.name(), &one_shot).render();
    let t_merged = recovery_table(cfg.workload.name(), cfg.fault_kind.name(), &merged).render();
    assert_eq!(t_one, t_merged);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The binary-level recovery leg CI runs: a recovery campaign sharded
/// 2 ways, one shard aborted mid-run after its first checkpoint, resumed,
/// merged — and the merged coverage-by-class CSV must be byte-identical
/// to the one-shot golden.
#[test]
fn killed_recovery_shard_resumes_and_merges_byte_identical() {
    let dir = tmpdir("kill");
    let dir_s = dir.to_str().unwrap();

    let golden_path = dir.join("golden.csv");
    let golden = Command::new(CAMPAIGND)
        .args(CONFIG_FLAGS)
        .args(["--one-shot", "--out", golden_path.to_str().unwrap()])
        .output()
        .expect("spawn campaignd");
    assert!(golden.status.success(), "one-shot failed: {}", stderr_of(&golden));
    let golden_bytes = std::fs::read(&golden_path).expect("golden csv");

    // Shard 0 aborts right after its first checkpoint, mid-recovery-campaign.
    let aborted = Command::new(CAMPAIGND)
        .args(CONFIG_FLAGS)
        .args([
            "--shard",
            "0/2",
            "--dir",
            dir_s,
            "--checkpoint-every",
            "1",
            "--exit-after-checkpoints",
            "1",
        ])
        .output()
        .expect("spawn campaignd");
    assert!(!aborted.status.success(), "the abort hook must kill the process");

    let resumed = Command::new(CAMPAIGND)
        .args(CONFIG_FLAGS)
        .args(["--shard", "0/2", "--resume", dir_s])
        .output()
        .expect("spawn campaignd");
    assert!(resumed.status.success(), "resume failed: {}", stderr_of(&resumed));

    let s1 = Command::new(CAMPAIGND)
        .args(CONFIG_FLAGS)
        .args(["--shard", "1/2", "--dir", dir_s])
        .output()
        .expect("spawn campaignd");
    assert!(s1.status.success(), "shard 1 failed: {}", stderr_of(&s1));

    let merged_path = dir.join("merged.csv");
    let merge = Command::new(MERGE)
        .args(CONFIG_FLAGS)
        .args(["--dir", dir_s, "--out", merged_path.to_str().unwrap()])
        .output()
        .expect("spawn campaign-merge");
    assert!(merge.status.success(), "merge failed: {}", stderr_of(&merge));
    let merged_bytes = std::fs::read(&merged_path).expect("merged csv");
    assert_eq!(
        golden_bytes, merged_bytes,
        "interrupted + resumed + merged recovery CSV must equal the one-shot golden"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The schema gate, through the binaries: a directory written by the v1
/// store is refused with exit code 6 by both `campaignd` (resume) and
/// `campaign-merge` — never silently misread as a v2 campaign.
#[test]
fn v1_store_is_refused_with_exit_code_6() {
    let dir = tmpdir("v1");
    let dir_s = dir.to_str().unwrap();

    // Hand-write a v1-era store: v1 manifest, v1 checkpoint (no crc
    // columns, no fault_kind/recovery fields), exactly as the old writer
    // laid them out.
    std::fs::write(
        dir.join("run_manifest.json"),
        "{\n  \"schema\": \"paradet-campaign-manifest/v1\",\n  \
         \"fingerprint\": \"00000000deadbeef\",\n  \"seed\": 42,\n  \
         \"workload\": \"freqmine\",\n  \"instrs\": 2500,\n  \
         \"trials_per_site\": 3,\n  \"sites\": [\"int-reg\"],\n  \
         \"shards\": 1,\n  \"system\": \"SystemConfig\"\n}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("shard-0-of-1.jsonl"),
        "{\"schema\": \"paradet-campaign-ckpt/v1\", \"fingerprint\": \
         \"00000000deadbeef\", \"shard\": \"0/1\"}\n\
         {\"site\": \"int-reg\", \"trial\": 0, \"outcome\": \"detected\", \
         \"latency_fs\": 123}\n",
    )
    .unwrap();

    let resume = Command::new(CAMPAIGND)
        .args(["--instrs", "2500", "--trials-per-site", "3", "--sites", "int-reg"])
        .args(["--shard", "0/1", "--resume", dir_s])
        .output()
        .expect("spawn campaignd");
    assert_eq!(
        resume.status.code(),
        Some(6),
        "resuming a v1 store must exit 6: {}",
        stderr_of(&resume)
    );
    assert!(
        stderr_of(&resume).contains("incompatible"),
        "the error must say the store is incompatible: {}",
        stderr_of(&resume)
    );

    let merge = Command::new(MERGE).args(["--dir", dir_s]).output().expect("spawn merge");
    assert_eq!(
        merge.status.code(),
        Some(6),
        "merging a v1 store must exit 6: {}",
        stderr_of(&merge)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
