//! Fault-injection campaigns over the paradet system.
//!
//! The paper's detection claims (§IV, §IV-I) are exercised by statistical
//! fault injection: each trial runs a workload twice — once clean (the
//! golden run) and once with a single armed fault — and classifies the
//! outcome:
//!
//! * **Detected** — a checker raised an error (store value/address, load
//!   address, register-checkpoint mismatch, or divergence timeout);
//! * **Crashed** — execution left the text segment; per §IV-H the OS holds
//!   termination until checks complete, then reports, so this also counts
//!   as detected in coverage terms (reported separately for transparency);
//! * **Silent data corruption (SDC)** — final memory or architectural state
//!   differs from golden with no detection: a *missed* fault;
//! * **Masked** — the fault changed nothing architectural (e.g. struck a
//!   dead value): benign by definition.
//!
//! Over-detection (§IV-I) is exercised separately by corrupting the
//! detection hardware's own log: the program is fine, but an error is
//! reported anyway — a false positive.
//!
//! # Sharded, resumable campaigns
//!
//! Because each trial is a pure function of `(seed, site, trial)`, a
//! campaign's work grid can be partitioned across processes ([`shard`]),
//! checkpointed to disk and resumed after a crash or `SIGKILL`
//! ([`store`], [`run_campaign_shard`]), and merged back
//! ([`merge_campaign`]) into a result **bit-identical** to the one-shot
//! in-memory [`run_campaign`]. The `campaignd` and `campaign-merge`
//! binaries expose this as a service; CI proves the identity on every
//! push.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
pub mod chaosfs;
pub mod cli;
mod service;
pub mod shard;
pub mod store;
pub mod supervisor;

pub use campaign::{
    run_campaign, run_overdetection_trials, trial_fault, trial_plan, trial_seed, CampaignConfig,
    CampaignResult, FaultSite, Outcome, SiteResult, TrialResult,
};
pub use chaosfs::{ChaosFs, ChaosScript, KillMode};
pub use paradet_core::RecoveryPolicy;
pub use paradet_ooo::FaultKind;
pub use service::{
    completeness_table, coverage_cells, coverage_table, merge_campaign, merge_campaign_on,
    merge_campaign_partial, merge_campaign_partial_on, merged_table, partial_result_table,
    recovery_cells, recovery_table, run_campaign_shard, run_campaign_shard_on,
    run_campaign_sharded, PartialMerge, ShardCompleteness, ShardRunOptions, ShardRunSummary,
    COMPLETENESS_HEADER, COVERAGE_HEADER, RECOVERY_HEADER,
};
pub use shard::ShardSpec;
pub use store::{real_fs, DynFs, RealFs, StoreError, StoreFs};
