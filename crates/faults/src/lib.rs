//! Fault-injection campaigns over the paradet system.
//!
//! The paper's detection claims (§IV, §IV-I) are exercised by statistical
//! fault injection: each trial runs a workload twice — once clean (the
//! golden run) and once with a single armed fault — and classifies the
//! outcome:
//!
//! * **Detected** — a checker raised an error (store value/address, load
//!   address, register-checkpoint mismatch, or divergence timeout);
//! * **Crashed** — execution left the text segment; per §IV-H the OS holds
//!   termination until checks complete, then reports, so this also counts
//!   as detected in coverage terms (reported separately for transparency);
//! * **Silent data corruption (SDC)** — final memory or architectural state
//!   differs from golden with no detection: a *missed* fault;
//! * **Masked** — the fault changed nothing architectural (e.g. struck a
//!   dead value): benign by definition.
//!
//! Over-detection (§IV-I) is exercised separately by corrupting the
//! detection hardware's own log: the program is fine, but an error is
//! reported anyway — a false positive.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;

pub use campaign::{
    run_campaign, run_overdetection_trials, trial_fault, trial_seed, CampaignConfig,
    CampaignResult, FaultSite, Outcome, SiteResult, TrialResult,
};
