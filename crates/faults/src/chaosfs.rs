//! Deterministic I/O fault injection for the campaign store: a
//! [`StoreFs`] that replays a scripted fault plan over the real
//! filesystem.
//!
//! The campaign service claims to survive torn writes, kills inside the
//! write→rename window, ENOSPC, lost lock removals, and stale
//! heartbeats. Those claims are only worth anything if they are *tested*
//! against exactly those faults — and testable means reproducible. A
//! [`ChaosFs`] is constructed from a [`ChaosScript`]: a list of entries,
//! each naming the n-th operation of a `(file class, operation)` pair and
//! the fault to inject there. Scripts render to/parse from a compact
//! string (the `--chaos` flag / `PARADET_CHAOS` env var), and
//! [`ChaosScript::random`] derives one from a seed with the same
//! SplitMix64 idiom as `trial_seed` — so every chaos run, including the
//! proptest's, replays bit-identically from `(seed, script)`.
//!
//! # Script grammar
//!
//! Entries are `;`-separated: `<attempt>:<verb>-<class>-<op>@<index>[=<arg>]`
//!
//! * `attempt` — which incarnation of the shard the entry arms for (the
//!   supervisor exports `PARADET_CHAOS_ATTEMPT`; restart n+1 sees a
//!   different slice of the script than the run it replaced).
//! * `verb` — `torn` (write a prefix), `abort` (kill the process at that
//!   operation), `fail` (return an error: ENOSPC on writes, EIO on
//!   reads), `drop` (pretend success, do nothing — a lost write or lost
//!   lock removal), `stall` (sleep `arg` ms first — a stale heartbeat).
//! * `class` — `manifest`, `ckpt`, `status`, `lock`, or `any`.
//! * `op` — `write`, `rename`, `read`, `remove`.
//! * `index` — 0-based occurrence of that `(class, op)` pair.
//! * `arg` — tear point for `torn`/`abort` writes (`k ≥ 0`: keep `k`
//!   bytes; `k < 0`: drop the last `|k|` bytes; `abort` with `0` writes
//!   everything, then dies — stranding the tmp before its rename), or
//!   the stall in milliseconds.
//!
//! `0:torn-ckpt-write-1=-9` = "on attempt 0, the second checkpoint-file
//! write keeps all but its last 9 bytes".
//!
//! # Kill modes
//!
//! [`KillMode::Abort`] is for real child processes (`std::process::abort`,
//! die-instantly like SIGKILL). [`KillMode::Panic`] is for in-process
//! harnesses (the chaos proptest): it panics with a recognizable payload
//! *and flips the filesystem dead* — from then on writes, renames, and
//! removes silently do nothing, so the `ShardLock` released during unwind
//! stays on disk exactly as a SIGKILLed process would leave it.

use crate::store::{RealFs, StoreFs};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Which store file an operation touches, by filename shape. Pid-tagged
/// `.tmp` staging siblings classify as their target (a checkpoint's tmp
/// is checkpoint traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileClass {
    /// `run_manifest.json`.
    Manifest,
    /// `shard-i-of-n.jsonl` checkpoints.
    Ckpt,
    /// `status-shard-i.json` heartbeats.
    Status,
    /// `shard-i.lock` lock files.
    Lock,
    /// Anything else (directories, foreign files).
    Other,
}

impl FileClass {
    fn of(path: &Path) -> FileClass {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.contains(".lock") {
            FileClass::Lock
        } else if name.contains("run_manifest") {
            FileClass::Manifest
        } else if name.starts_with("shard-") && name.contains(".jsonl") {
            FileClass::Ckpt
        } else if name.starts_with("status-") {
            FileClass::Status
        } else {
            FileClass::Other
        }
    }

    fn tag(self) -> &'static str {
        match self {
            FileClass::Manifest => "manifest",
            FileClass::Ckpt => "ckpt",
            FileClass::Status => "status",
            FileClass::Lock => "lock",
            FileClass::Other => "other",
        }
    }
}

/// The filesystem operation an entry arms on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsOp {
    /// [`StoreFs::write`].
    Write,
    /// [`StoreFs::rename`].
    Rename,
    /// [`StoreFs::read_to_string`].
    Read,
    /// [`StoreFs::remove_file`].
    Remove,
}

impl FsOp {
    fn tag(self) -> &'static str {
        match self {
            FsOp::Write => "write",
            FsOp::Rename => "rename",
            FsOp::Read => "read",
            FsOp::Remove => "remove",
        }
    }
}

/// The fault an entry injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Write only a prefix (see the `arg` rules) and report success.
    Torn,
    /// Kill the process at this operation (after a `torn`-style partial
    /// write for `write` ops; *instead of* the rename for `rename` ops).
    Abort,
    /// Return an error: ENOSPC-flavoured on write/rename/remove, EIO on
    /// read.
    Fail,
    /// Report success without doing anything — a lost write, or the lost
    /// lock removal of a dying process.
    Drop,
    /// Sleep `arg` milliseconds, then do the operation — a stale
    /// heartbeat / hung shard as the supervisor sees it.
    Stall,
}

impl Verb {
    fn tag(self) -> &'static str {
        match self {
            Verb::Torn => "torn",
            Verb::Abort => "abort",
            Verb::Fail => "fail",
            Verb::Drop => "drop",
            Verb::Stall => "stall",
        }
    }
}

/// One scripted fault: on `attempt`, at the `index`-th `(class, op)`
/// operation, inject `verb` (with `arg`). `class: None` is the `any`
/// class — its indices count *all* operations of that op kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEntry {
    /// Shard incarnation the entry arms for.
    pub attempt: u32,
    /// Fault to inject.
    pub verb: Verb,
    /// File class to match, `None` for `any`.
    pub class: Option<FileClass>,
    /// Operation kind to match.
    pub op: FsOp,
    /// 0-based occurrence of the `(class, op)` pair.
    pub index: u32,
    /// Tear point or stall milliseconds (verb-dependent).
    pub arg: i64,
}

impl ChaosEntry {
    fn render(&self) -> String {
        let class = self.class.map(FileClass::tag).unwrap_or("any");
        let mut s = format!(
            "{}:{}-{}-{}@{}",
            self.attempt,
            self.verb.tag(),
            class,
            self.op.tag(),
            self.index
        );
        if self.arg != 0 {
            s.push_str(&format!("={}", self.arg));
        }
        s
    }

    fn parse(s: &str) -> Result<ChaosEntry, String> {
        let bad = |what: &str| format!("chaos entry `{s}`: {what}");
        let (attempt, rest) = s.split_once(':').ok_or_else(|| bad("missing `attempt:`"))?;
        let attempt: u32 = attempt.trim().parse().map_err(|_| bad("bad attempt"))?;
        let (spec, tail) = rest.split_once('@').ok_or_else(|| bad("missing `@index`"))?;
        let (index, arg) = match tail.split_once('=') {
            Some((i, a)) => (
                i.trim().parse().map_err(|_| bad("bad index"))?,
                a.trim().parse().map_err(|_| bad("bad arg"))?,
            ),
            None => (tail.trim().parse().map_err(|_| bad("bad index"))?, 0),
        };
        let mut parts = spec.trim().splitn(3, '-');
        let verb = match parts.next().unwrap_or("") {
            "torn" => Verb::Torn,
            "abort" => Verb::Abort,
            "fail" => Verb::Fail,
            "drop" => Verb::Drop,
            "stall" => Verb::Stall,
            v => return Err(bad(&format!("unknown verb `{v}`"))),
        };
        let class = match parts.next().unwrap_or("") {
            "manifest" => Some(FileClass::Manifest),
            "ckpt" => Some(FileClass::Ckpt),
            "status" => Some(FileClass::Status),
            "lock" => Some(FileClass::Lock),
            "any" => None,
            c => return Err(bad(&format!("unknown class `{c}`"))),
        };
        let op = match parts.next().unwrap_or("") {
            "write" => FsOp::Write,
            "rename" => FsOp::Rename,
            "read" => FsOp::Read,
            "remove" => FsOp::Remove,
            o => return Err(bad(&format!("unknown op `{o}`"))),
        };
        Ok(ChaosEntry { attempt, verb, class, op, index, arg })
    }
}

/// A full fault plan: the ordered entries of a chaos run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosScript {
    /// The scripted faults.
    pub entries: Vec<ChaosEntry>,
}

impl ChaosScript {
    /// Parses the `;`-separated script grammar (see the module docs).
    pub fn parse(s: &str) -> Result<ChaosScript, String> {
        let entries = s
            .split(';')
            .map(str::trim)
            .filter(|e| !e.is_empty())
            .map(ChaosEntry::parse)
            .collect::<Result<_, _>>()?;
        Ok(ChaosScript { entries })
    }

    /// Renders back to the script grammar (`parse ∘ render` is identity).
    pub fn render(&self) -> String {
        self.entries.iter().map(ChaosEntry::render).collect::<Vec<_>>().join(";")
    }

    /// Derives a random-but-reproducible script from `seed`: 1–3 entries
    /// over attempts `0..attempts`, uniformly across the verb/class/op
    /// combinations that model process or disk faults. Never generates
    /// `stall` (wall-clock sleeps would slow the proptest for nothing —
    /// the hang leg is exercised by a fixed CI script instead).
    pub fn random(seed: u64, attempts: u32) -> ChaosScript {
        let mut state = seed;
        let mut next = move || {
            // SplitMix64 — the same generator idiom as `trial_seed`.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let count = 1 + (next() % 3) as usize;
        let entries = (0..count)
            .map(|_| {
                let verb = match next() % 4 {
                    0 => Verb::Torn,
                    1 => Verb::Abort,
                    2 => Verb::Fail,
                    _ => Verb::Drop,
                };
                let op = match verb {
                    Verb::Torn => FsOp::Write,
                    Verb::Abort => [FsOp::Write, FsOp::Rename][(next() % 2) as usize],
                    Verb::Fail => {
                        [FsOp::Write, FsOp::Rename, FsOp::Read, FsOp::Remove][(next() % 4) as usize]
                    }
                    Verb::Drop => [FsOp::Write, FsOp::Remove][(next() % 2) as usize],
                    Verb::Stall => unreachable!(),
                };
                let class = match next() % 5 {
                    0 => Some(FileClass::Manifest),
                    1 => Some(FileClass::Ckpt),
                    2 => Some(FileClass::Status),
                    3 => Some(FileClass::Lock),
                    _ => None,
                };
                let arg = match verb {
                    Verb::Torn => -(1 + (next() % 24) as i64),
                    Verb::Abort if op == FsOp::Write => {
                        if next() % 2 == 0 {
                            0
                        } else {
                            -(1 + (next() % 24) as i64)
                        }
                    }
                    _ => 0,
                };
                ChaosEntry {
                    attempt: (next() % u64::from(attempts.max(1))) as u32,
                    verb,
                    class,
                    op,
                    index: (next() % 5) as u32,
                    arg,
                }
            })
            .collect();
        ChaosScript { entries }
    }
}

/// How an `abort` entry kills the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// `std::process::abort()` — for real child processes; dies without
    /// unwinding, like SIGKILL.
    Abort,
    /// `panic!("chaos-kill")` with the filesystem flipped dead — for
    /// in-process harnesses; unwinding drops run the code paths, but the
    /// dead filesystem refuses to act on them, so the on-disk state is
    /// exactly what a SIGKILL would leave.
    Panic,
}

/// The panic payload [`KillMode::Panic`] uses; harnesses match on it to
/// tell a scripted kill from a real bug.
pub const CHAOS_KILL: &str = "chaos-kill";

/// A [`StoreFs`] that injects the faults of a [`ChaosScript`] over
/// [`RealFs`]. See the module docs for semantics.
#[derive(Debug)]
pub struct ChaosFs {
    inner: RealFs,
    script: ChaosScript,
    attempt: u32,
    kill_mode: KillMode,
    /// Occurrence counters per `(class, op)`; `(Other, op)` doubles as
    /// nothing special — the `any` counter is keyed separately below.
    counters: Mutex<std::collections::HashMap<(Option<FileClass>, FsOp), u32>>,
    dead: AtomicBool,
}

impl ChaosFs {
    /// A chaos filesystem replaying `script` as incarnation `attempt`.
    pub fn new(script: ChaosScript, attempt: u32, kill_mode: KillMode) -> ChaosFs {
        ChaosFs {
            inner: RealFs,
            script,
            attempt,
            kill_mode,
            counters: Mutex::new(std::collections::HashMap::new()),
            dead: AtomicBool::new(false),
        }
    }

    /// Builds a chaos filesystem from `PARADET_CHAOS` (the script) and
    /// `PARADET_CHAOS_ATTEMPT` (the incarnation, default 0) — how the
    /// `campaignd` binary picks up the supervisor's fault plan. `None`
    /// when no script is set; a malformed script is an error, not a
    /// silently clean run.
    pub fn from_env(kill_mode: KillMode) -> Result<Option<ChaosFs>, String> {
        let Ok(script) = std::env::var("PARADET_CHAOS") else {
            return Ok(None);
        };
        let attempt =
            std::env::var("PARADET_CHAOS_ATTEMPT").ok().and_then(|a| a.parse().ok()).unwrap_or(0);
        Ok(Some(ChaosFs::new(ChaosScript::parse(&script)?, attempt, kill_mode)))
    }

    /// Whether a scripted kill has already fired (Panic mode only).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Returns the armed verb+arg for this `(path, op)` occurrence, if
    /// any. Counts both the class-specific and the `any` occurrence.
    fn armed(&self, path: &Path, op: FsOp) -> Option<(Verb, i64)> {
        let class = FileClass::of(path);
        let mut counters = self.counters.lock().unwrap();
        let specific = {
            let c = counters.entry((Some(class), op)).or_insert(0);
            let i = *c;
            *c += 1;
            i
        };
        let any = {
            let c = counters.entry((None, op)).or_insert(0);
            let i = *c;
            *c += 1;
            i
        };
        drop(counters);
        self.script.entries.iter().find_map(|e| {
            if e.attempt != self.attempt || e.op != op {
                return None;
            }
            let hit = match e.class {
                Some(c) => c == class && e.index == specific,
                None => e.index == any,
            };
            hit.then_some((e.verb, e.arg))
        })
    }

    /// Kills the process per the kill mode. Never returns.
    fn kill(&self) -> ! {
        match self.kill_mode {
            KillMode::Abort => std::process::abort(),
            KillMode::Panic => {
                self.dead.store(true, Ordering::SeqCst);
                panic!("{CHAOS_KILL}");
            }
        }
    }

    fn enospc(path: &Path) -> io::Error {
        io::Error::other(format!(
            "chaos: injected ENOSPC (no space left on device) writing {}",
            path.display()
        ))
    }

    fn eio(path: &Path) -> io::Error {
        io::Error::other(format!("chaos: injected EIO reading {}", path.display()))
    }
}

/// Keeps `len` bytes for `k ≥ 0`, all but the last `|k|` for `k < 0`.
fn tear_len(len: usize, k: i64) -> usize {
    if k >= 0 {
        (k as usize).min(len)
    } else {
        len.saturating_sub(k.unsigned_abs() as usize)
    }
}

impl StoreFs for ChaosFs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        if self.is_dead() {
            return Err(Self::eio(path));
        }
        match self.armed(path, FsOp::Read) {
            Some((Verb::Fail, _)) => Err(Self::eio(path)),
            Some((Verb::Abort, _)) => self.kill(),
            Some((Verb::Stall, ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms.max(0) as u64));
                self.inner.read_to_string(path)
            }
            // torn/drop reads don't model anything the store could
            // distinguish from corruption already covered by the crc
            // seals; treat them as clean.
            _ => self.inner.read_to_string(path),
        }
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        if self.is_dead() {
            return Ok(()); // A dead process writes nothing, silently.
        }
        match self.armed(path, FsOp::Write) {
            Some((Verb::Torn, k)) => {
                self.inner.write(path, &contents[..tear_len(contents.len(), k)])
            }
            Some((Verb::Abort, k)) => {
                // Die mid-write: the file holds a prefix (arg 0 = all of
                // it — the kill lands between write and rename instead).
                let keep = if k == 0 { contents.len() } else { tear_len(contents.len(), k) };
                let _ = self.inner.write(path, &contents[..keep]);
                self.kill()
            }
            Some((Verb::Fail, _)) => Err(Self::enospc(path)),
            Some((Verb::Drop, _)) => Ok(()),
            Some((Verb::Stall, ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms.max(0) as u64));
                self.inner.write(path, contents)
            }
            None => self.inner.write(path, contents),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.is_dead() {
            return Ok(());
        }
        match self.armed(to, FsOp::Rename) {
            // Die before the rename commits: the `.tmp` is stranded and
            // the target keeps its previous contents — the exact window
            // the atomic-write discipline (and the tmp sweep) exist for.
            Some((Verb::Abort, _)) => self.kill(),
            Some((Verb::Fail, _)) => Err(Self::enospc(to)),
            Some((Verb::Drop, _)) => Ok(()),
            Some((Verb::Stall, ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms.max(0) as u64));
                self.inner.rename(from, to)
            }
            _ => self.inner.rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.is_dead() {
            return Ok(()); // Critically: a dead process removes no locks.
        }
        match self.armed(path, FsOp::Remove) {
            Some((Verb::Fail, _)) => Err(Self::enospc(path)),
            Some((Verb::Drop, _)) => Ok(()), // Lost lock removal.
            Some((Verb::Abort, _)) => self.kill(),
            _ => self.inner.remove_file(path),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        if self.is_dead() {
            return Ok(());
        }
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("paradet-chaos-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn script_parse_render_round_trips() {
        let s = "0:torn-ckpt-write@1=-9;2:fail-any-read@0;1:drop-lock-remove@0;0:stall-status-write@3=250";
        let script = ChaosScript::parse(s).unwrap();
        assert_eq!(script.entries.len(), 4);
        assert_eq!(ChaosScript::parse(&script.render()).unwrap(), script);
        assert_eq!(
            script.entries[0],
            ChaosEntry {
                attempt: 0,
                verb: Verb::Torn,
                class: Some(FileClass::Ckpt),
                op: FsOp::Write,
                index: 1,
                arg: -9
            }
        );
        assert_eq!(script.entries[1].class, None, "`any` parses as no class filter");
        assert!(ChaosScript::parse("0:zorch-ckpt-write@0").is_err());
        assert!(ChaosScript::parse("no-attempt-write@0").is_err());
    }

    #[test]
    fn random_scripts_are_reproducible_and_parse() {
        for seed in 0..50 {
            let a = ChaosScript::random(seed, 3);
            let b = ChaosScript::random(seed, 3);
            assert_eq!(a, b, "seed {seed} must replay identically");
            assert_eq!(ChaosScript::parse(&a.render()).unwrap(), a);
            assert!(!a.entries.is_empty());
            assert!(a.entries.iter().all(|e| e.verb != Verb::Stall), "no wall-clock sleeps");
        }
        assert_ne!(ChaosScript::random(1, 3), ChaosScript::random(2, 3));
    }

    #[test]
    fn classifies_store_files_including_tmp_siblings() {
        let c = |p: &str| FileClass::of(Path::new(p));
        assert_eq!(c("/d/run_manifest.json"), FileClass::Manifest);
        assert_eq!(c("/d/run_manifest.json.123.tmp"), FileClass::Manifest);
        assert_eq!(c("/d/shard-0-of-2.jsonl"), FileClass::Ckpt);
        assert_eq!(c("/d/shard-0-of-2.jsonl.123.tmp"), FileClass::Ckpt);
        assert_eq!(c("/d/status-shard-1.json"), FileClass::Status);
        assert_eq!(c("/d/shard-1.lock"), FileClass::Lock);
        assert_eq!(c("/d/unrelated.txt"), FileClass::Other);
    }

    #[test]
    fn torn_write_keeps_the_scripted_prefix() {
        let dir = tmpdir("torn");
        let fs =
            ChaosFs::new(ChaosScript::parse("0:torn-ckpt-write@0=-4").unwrap(), 0, KillMode::Panic);
        let path = dir.join("shard-0-of-1.jsonl");
        fs.write(&path, b"hello checkpoint").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello checkp");
        // Occurrence 1 is unscripted: clean.
        fs.write(&path, b"second write").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second write");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_write_is_enospc_flavoured_and_attempt_scoped() {
        let dir = tmpdir("fail");
        let script = ChaosScript::parse("1:fail-status-write@0").unwrap();
        let path = dir.join("status-shard-0.json");
        // Attempt 0: the entry is armed for attempt 1, so this is clean.
        let fs0 = ChaosFs::new(script.clone(), 0, KillMode::Panic);
        fs0.write(&path, b"ok").unwrap();
        // Attempt 1: injected.
        let fs1 = ChaosFs::new(script, 1, KillMode::Panic);
        let err = fs1.write(&path, b"nope").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_kill_flips_dead_and_preserves_lock_files() {
        let dir = tmpdir("dead");
        let fs =
            ChaosFs::new(ChaosScript::parse("0:abort-ckpt-write@0=0").unwrap(), 0, KillMode::Panic);
        let lock = dir.join("shard-0.lock");
        fs.write(&lock, b"123 456\n").unwrap();
        let ckpt = dir.join("shard-0-of-1.jsonl");
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fs.write(&ckpt, b"doomed").unwrap();
        }));
        let payload = killed.unwrap_err();
        assert_eq!(payload.downcast_ref::<String>().map(String::as_str), Some(CHAOS_KILL));
        assert!(fs.is_dead());
        // Arg 0: the write itself landed before the kill.
        assert_eq!(std::fs::read_to_string(&ckpt).unwrap(), "doomed");
        // A dead process cannot clean up after itself: the remove that
        // ShardLock::drop issues during unwind must be a silent no-op.
        fs.remove_file(&lock).unwrap();
        assert!(lock.exists(), "a dead fs leaves lock files behind, like SIGKILL");
        fs.write(&ckpt, b"ghost write").unwrap();
        assert_eq!(std::fs::read_to_string(&ckpt).unwrap(), "doomed", "dead writes are no-ops");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_remove_models_lost_lock_removal() {
        let dir = tmpdir("droprm");
        let fs =
            ChaosFs::new(ChaosScript::parse("0:drop-lock-remove@0").unwrap(), 0, KillMode::Panic);
        let lock = dir.join("shard-0.lock");
        std::fs::write(&lock, "123 -\n").unwrap();
        fs.remove_file(&lock).unwrap(); // Reports success…
        assert!(lock.exists(), "…but the lock survives: a lost removal");
        fs.remove_file(&lock).unwrap(); // Second occurrence is clean.
        assert!(!lock.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abort_rename_strands_the_tmp() {
        let dir = tmpdir("strand");
        let fs =
            ChaosFs::new(ChaosScript::parse("0:abort-ckpt-rename@0").unwrap(), 0, KillMode::Panic);
        let tmp = dir.join("shard-0-of-1.jsonl.99.tmp");
        let target = dir.join("shard-0-of-1.jsonl");
        std::fs::write(&target, "old checkpoint").unwrap();
        fs.write(&tmp, b"new checkpoint").unwrap();
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fs.rename(&tmp, &target).unwrap();
        }));
        assert!(killed.is_err());
        assert!(tmp.exists(), "tmp stranded in the write→rename window");
        assert_eq!(std::fs::read_to_string(&target).unwrap(), "old checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_class_counts_across_all_files() {
        let dir = tmpdir("any");
        // The third write of *any* class fails, regardless of target.
        let fs =
            ChaosFs::new(ChaosScript::parse("0:fail-any-write@2").unwrap(), 0, KillMode::Panic);
        fs.write(&dir.join("run_manifest.json"), b"a").unwrap();
        fs.write(&dir.join("shard-0.lock"), b"b").unwrap();
        assert!(fs.write(&dir.join("status-shard-0.json"), b"c").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
