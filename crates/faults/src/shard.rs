//! Deterministic partitioning of the campaign `(site, trial)` grid.
//!
//! A campaign enumerates its work as a site-major grid: global index
//! `g = site_position * trials_per_site + trial`. Shard `i/n` owns exactly
//! the points with `g % n == i`, in increasing `g` — a pure function of the
//! grid shape, so any process (or host) can compute its slice without
//! coordination, the slices are disjoint, and their union is the full grid.
//!
//! Sharding never touches fault selection: per-trial RNG seeds are pure in
//! `(seed, site, trial)` (see [`trial_seed`](crate::trial_seed)), so a
//! point draws the identical fault whether it runs one-shot, in shard
//! `0/1`, or in shard `7/16`. The round-robin (strided) assignment also
//! balances cost: expensive site classes (SDC trials run to the full
//! budget plus a state diff) spread across shards instead of landing on
//! one.

use crate::campaign::FaultSite;
use std::fmt;

/// One shard's identity within a campaign: `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    index: u32,
    count: u32,
}

impl ShardSpec {
    /// The whole campaign as a single shard (`0/1`).
    pub const SOLO: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// Creates shard `index` of `count`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `index >= count`.
    pub fn new(index: u32, count: u32) -> ShardSpec {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range for {count} shards");
        ShardSpec { index, count }
    }

    /// Parses the CLI form `i/n` (e.g. `0/2`).
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (i, n) = s.split_once('/').ok_or_else(|| format!("expected i/n, got `{s}`"))?;
        let index: u32 = i.trim().parse().map_err(|_| format!("bad shard index `{i}`"))?;
        let count: u32 = n.trim().parse().map_err(|_| format!("bad shard count `{n}`"))?;
        if count == 0 {
            return Err("shard count must be positive".to_string());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for {count} shards"));
        }
        Ok(ShardSpec { index, count })
    }

    /// This shard's index.
    pub fn index(self) -> u32 {
        self.index
    }

    /// Total shards in the campaign.
    pub fn count(self) -> u32 {
        self.count
    }

    /// Whether this shard owns global grid index `g`.
    pub fn owns(self, g: usize) -> bool {
        g % self.count as usize == self.index as usize
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The full campaign grid, site-major: every `(site, trial)` point in
/// reporting order. This is the canonical enumeration both the one-shot
/// runner and the sharded runner partition.
pub fn grid_points(sites: &[FaultSite], trials_per_site: u64) -> Vec<(FaultSite, u64)> {
    sites.iter().flat_map(|&site| (0..trials_per_site).map(move |t| (site, t))).collect()
}

/// The slice of the grid shard `shard` owns, in increasing global index.
pub fn shard_points(
    sites: &[FaultSite],
    trials_per_site: u64,
    shard: ShardSpec,
) -> Vec<(FaultSite, u64)> {
    grid_points(sites, trials_per_site)
        .into_iter()
        .enumerate()
        .filter(|&(g, _)| shard.owns(g))
        .map(|(_, p)| p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_grid() {
        let sites = FaultSite::all();
        for n in [1u32, 2, 3, 5, 8] {
            let mut seen = std::collections::HashSet::new();
            let mut union_len = 0;
            for i in 0..n {
                let pts = shard_points(&sites, 7, ShardSpec::new(i, n));
                union_len += pts.len();
                for p in pts {
                    assert!(seen.insert(p), "point {p:?} assigned to two shards at n={n}");
                }
            }
            assert_eq!(union_len, grid_points(&sites, 7).len());
            assert_eq!(seen.len(), sites.len() * 7);
        }
    }

    #[test]
    fn solo_shard_is_the_full_grid() {
        let sites = [FaultSite::IntReg, FaultSite::Pc];
        assert_eq!(shard_points(&sites, 5, ShardSpec::SOLO), grid_points(&sites, 5));
    }

    #[test]
    fn parse_round_trips() {
        let s = ShardSpec::parse("1/4").unwrap();
        assert_eq!((s.index(), s.count()), (1, 4));
        assert_eq!(s.to_string(), "1/4");
        assert!(ShardSpec::parse("4/4").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("banana").is_err());
    }
}
