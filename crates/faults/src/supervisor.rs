//! The self-healing shard supervisor: `campaignd --supervise n`.
//!
//! The paper's thesis — errors are inevitable; detection and recovery
//! must be systematic — applies to the campaign *service* as much as to
//! the simulated machine. PR 6/7 made a killed shard resumable by a
//! human; this module removes the human. The supervisor
//!
//! 1. spawns the n shard workers as child processes (always with
//!    `--resume`: a fresh directory resumes from nothing, a crashed
//!    shard's stale lock is taken over via owner-liveness detection);
//! 2. watches each shard's `status-shard-i.json` heartbeat **mtime**
//!    against a deadline — a shard that stops heartbeating is hung, and
//!    gets killed like a crashed one (deadline-style health monitoring à
//!    la FlexStep);
//! 3. restarts crashed/hung shards under capped exponential backoff with
//!    deterministic jitter (SplitMix64 over `(seed, shard, attempt)` — a
//!    supervised run's restart schedule replays exactly);
//! 4. after `max_restarts` failed restarts — or immediately on a
//!    *non-retryable* exit (usage, fingerprint mismatch, live lock,
//!    schema) — quarantines the shard as **degraded**, stamps its status
//!    file, and moves on;
//! 5. on full success merges and prints the table byte-identical to the
//!    one-shot; with quarantined shards it exits
//!    [`DEGRADED`](crate::cli::exit::DEGRADED) and points at
//!    `campaign-merge --partial` for explicit completeness accounting.
//!
//! Determinism invariant 12 (ARCHITECTURE.md): under any scripted I/O
//! fault plan, a supervised campaign either merges byte-identical to the
//! one-shot golden or terminates with a typed, explicit failure — never a
//! silent partial or corrupt merge. [`supervise_in_process`] is the
//! proptest-facing harness that pins the invariant over random
//! [`ChaosScript`]s × shard counts × kill points; the CI `campaign-chaos`
//! job re-proves it through the real binaries.

use crate::campaign::CampaignConfig;
use crate::chaosfs::{ChaosFs, ChaosScript, KillMode, CHAOS_KILL};
use crate::service::{run_campaign_shard_on, ShardRunOptions};
use crate::shard::ShardSpec;
use crate::store::{read_status, status_path, write_status, DynFs, StoreError};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Restart/backoff/deadline policy of a supervised campaign.
#[derive(Debug, Clone, Copy)]
pub struct SupervisePolicy {
    /// Restarts per shard before quarantining it as degraded.
    pub max_restarts: u32,
    /// Base backoff before a restart; attempt k waits `base · 2^(k−1)`
    /// (capped) plus jitter.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// A shard whose status-file heartbeat is older than this is hung and
    /// gets killed + restarted.
    pub heartbeat_timeout_ms: u64,
    /// Child poll interval.
    pub poll_ms: u64,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for SupervisePolicy {
    fn default() -> SupervisePolicy {
        SupervisePolicy {
            max_restarts: 3,
            backoff_base_ms: 200,
            backoff_cap_ms: 5_000,
            heartbeat_timeout_ms: 30_000,
            poll_ms: 50,
            seed: 0,
        }
    }
}

/// SplitMix64 finalizer — the same mixing idiom as `trial_seed`.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The wait before restart number `attempt` (1-based) of `shard`: capped
/// exponential backoff plus a deterministic jitter in `[0, base)` derived
/// from `(seed, shard, attempt)`. Pure — a supervised run's entire
/// restart schedule is a function of the policy.
pub fn backoff_ms(policy: &SupervisePolicy, shard: u32, attempt: u32) -> u64 {
    let base = policy.backoff_base_ms.max(1);
    let exp =
        base.saturating_mul(1u64 << (attempt.saturating_sub(1)).min(32)).min(policy.backoff_cap_ms);
    let jitter = mix(policy
        .seed
        .wrapping_add(u64::from(shard).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03)))
        % base;
    exp + jitter
}

/// How a supervised shard ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardFate {
    /// The shard completed its slice (possibly after restarts).
    Completed {
        /// Restarts it took.
        restarts: u32,
    },
    /// The shard was quarantined: restart budget exhausted, or a
    /// non-retryable failure. Its partial checkpoint remains mergeable
    /// via `campaign-merge --partial`.
    Degraded {
        /// Restarts attempted before quarantine.
        restarts: u32,
        /// Why (last exit status / error).
        reason: String,
    },
}

/// The full outcome of a supervised run.
#[derive(Debug)]
pub struct SuperviseOutcome {
    /// Per-shard fates, shard order.
    pub fates: Vec<ShardFate>,
}

impl SuperviseOutcome {
    /// Whether every shard completed.
    pub fn all_completed(&self) -> bool {
        self.fates.iter().all(|f| matches!(f, ShardFate::Completed { .. }))
    }

    /// Indices of quarantined shards.
    pub fn degraded_shards(&self) -> Vec<u32> {
        self.fates
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f, ShardFate::Degraded { .. }))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// How to spawn one shard worker.
#[derive(Debug, Clone)]
pub struct ShardCommand {
    /// The `campaignd` binary (normally `std::env::current_exe()`).
    pub program: PathBuf,
    /// The campaign-config flags, exactly as the supervisor received them
    /// (see [`crate::cli::render_config_flags`] — the child must compute
    /// the *same* fingerprint, and the fingerprint gate turns any
    /// divergence into a visible non-retryable exit, never corruption).
    pub config_flags: Vec<String>,
    /// Campaign directory.
    pub dir: PathBuf,
    /// Total shards.
    pub shards: u32,
    /// `--checkpoint-every` for the children (also the heartbeat cadence).
    pub checkpoint_every: u64,
    /// Chaos script to export to children as `PARADET_CHAOS` (the
    /// supervisor also exports each child's incarnation number as
    /// `PARADET_CHAOS_ATTEMPT`).
    pub chaos: Option<String>,
}

impl ShardCommand {
    fn spawn(&self, shard: u32, attempt: u32) -> std::io::Result<Child> {
        let spec = ShardSpec::new(shard, self.shards);
        let mut cmd = Command::new(&self.program);
        cmd.arg("--shard")
            .arg(spec.to_string())
            // Always resume: a fresh directory resumes from nothing, a
            // dead owner's lock is taken over, and a *live* owner still
            // refuses (exit LOCKED, non-retryable) — so `--resume` here
            // can never race or clobber anything.
            .arg("--resume")
            .arg(&self.dir)
            .arg("--checkpoint-every")
            .arg(self.checkpoint_every.to_string())
            .args(&self.config_flags)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(script) = &self.chaos {
            cmd.env("PARADET_CHAOS", script).env("PARADET_CHAOS_ATTEMPT", attempt.to_string());
        }
        cmd.spawn()
    }
}

/// Exit codes that restarting cannot fix: usage, fingerprint mismatch,
/// a genuinely live lock owner, schema version. (See
/// [`crate::cli::exit`].)
fn non_retryable(code: i32) -> bool {
    matches!(code, 2 | 3 | 4 | 6)
}

enum St {
    Pending { at: Instant, attempt: u32 },
    Running { child: Child, attempt: u32, spawned: Instant },
    Done(ShardFate),
}

/// The newest heartbeat instant the supervisor can attribute to a shard:
/// its status file's mtime (the real filesystem — heartbeat freshness is
/// a wall-clock property even under chaos), or `None` before the first
/// write.
fn heartbeat_age(dir: &Path, shard: ShardSpec) -> Option<Duration> {
    std::fs::metadata(status_path(dir, shard))
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
}

/// Runs `cmd.shards` shard workers to completion (or quarantine) under
/// `policy`, logging progress through `log`. Blocks until every shard is
/// done or degraded; the caller decides what to do with the fates
/// (merge, or hand off to `campaign-merge --partial`).
pub fn supervise_processes(
    cmd: &ShardCommand,
    policy: &SupervisePolicy,
    mut log: impl FnMut(&str),
) -> SuperviseOutcome {
    let now = Instant::now();
    let mut states: Vec<St> =
        (0..cmd.shards).map(|_| St::Pending { at: now, attempt: 0 }).collect();

    loop {
        let mut all_done = true;
        for (i, state) in states.iter_mut().enumerate() {
            let shard = i as u32;
            let spec = ShardSpec::new(shard, cmd.shards);
            match state {
                St::Done(_) => {}
                St::Pending { at, attempt } => {
                    all_done = false;
                    if Instant::now() < *at {
                        continue;
                    }
                    let attempt = *attempt;
                    match cmd.spawn(shard, attempt) {
                        Ok(child) => {
                            if attempt > 0 {
                                log(&format!("shard {spec}: restart {attempt} spawned"));
                            }
                            *state = St::Running { child, attempt, spawned: Instant::now() };
                        }
                        Err(e) => {
                            log(&format!("shard {spec}: spawn failed: {e}"));
                            *state = quarantine(
                                &cmd.dir,
                                spec,
                                attempt,
                                format!("spawn failed: {e}"),
                                &mut log,
                            );
                        }
                    }
                }
                St::Running { child, attempt, spawned } => {
                    all_done = false;
                    let attempt = *attempt;
                    match child.try_wait() {
                        Ok(Some(status)) if status.success() => {
                            log(&format!(
                                "shard {spec}: completed ({} restart{})",
                                attempt,
                                if attempt == 1 { "" } else { "s" }
                            ));
                            *state = St::Done(ShardFate::Completed { restarts: attempt });
                        }
                        Ok(Some(status)) => {
                            let code = status.code();
                            let reason = match code {
                                Some(c) => format!("exit code {c}"),
                                None => "killed by signal".to_string(),
                            };
                            if code.is_some_and(non_retryable) {
                                log(&format!("shard {spec}: {reason} (non-retryable)"));
                                *state = quarantine(&cmd.dir, spec, attempt, reason, &mut log);
                            } else if attempt >= policy.max_restarts {
                                log(&format!("shard {spec}: {reason}; restart budget spent"));
                                *state = quarantine(
                                    &cmd.dir,
                                    spec,
                                    attempt,
                                    format!("{reason} after {attempt} restarts"),
                                    &mut log,
                                );
                            } else {
                                let wait = backoff_ms(policy, shard, attempt + 1);
                                log(&format!("shard {spec}: {reason}; restarting in {wait}ms"));
                                *state = St::Pending {
                                    at: Instant::now() + Duration::from_millis(wait),
                                    attempt: attempt + 1,
                                };
                            }
                        }
                        Ok(None) => {
                            // Still running: heartbeat deadline. Grace:
                            // measure from spawn until the first status
                            // write appears.
                            let age =
                                heartbeat_age(&cmd.dir, spec).unwrap_or_else(|| spawned.elapsed());
                            if age > Duration::from_millis(policy.heartbeat_timeout_ms) {
                                let _ = child.kill();
                                let _ = child.wait();
                                if attempt >= policy.max_restarts {
                                    log(&format!("shard {spec}: hung; restart budget spent"));
                                    *state = quarantine(
                                        &cmd.dir,
                                        spec,
                                        attempt,
                                        format!(
                                            "heartbeat stale for {}ms after {attempt} restarts",
                                            age.as_millis()
                                        ),
                                        &mut log,
                                    );
                                } else {
                                    let wait = backoff_ms(policy, shard, attempt + 1);
                                    log(&format!(
                                        "shard {spec}: heartbeat stale ({}ms); killed, \
                                         restarting in {wait}ms",
                                        age.as_millis()
                                    ));
                                    *state = St::Pending {
                                        at: Instant::now() + Duration::from_millis(wait),
                                        attempt: attempt + 1,
                                    };
                                }
                            }
                        }
                        Err(e) => {
                            log(&format!("shard {spec}: wait failed: {e}"));
                            *state = quarantine(
                                &cmd.dir,
                                spec,
                                attempt,
                                format!("wait failed: {e}"),
                                &mut log,
                            );
                        }
                    }
                }
            }
        }
        if all_done {
            break;
        }
        std::thread::sleep(Duration::from_millis(policy.poll_ms));
    }

    SuperviseOutcome {
        fates: states
            .into_iter()
            .map(|s| match s {
                St::Done(f) => f,
                _ => unreachable!("loop exits only when all states are Done"),
            })
            .collect(),
    }
}

/// Quarantines a shard: stamps its status file `degraded` (preserving the
/// last known progress so `campaign-merge --partial` can account for it)
/// and returns the terminal state.
fn quarantine(
    dir: &Path,
    spec: ShardSpec,
    restarts: u32,
    reason: String,
    log: &mut impl FnMut(&str),
) -> St {
    let (done, total) = read_status(dir, spec).map(|s| (s.done, s.total)).unwrap_or((0, 0));
    if let Err(e) = write_status(dir, spec, "degraded", done, total) {
        log(&format!("shard {spec}: could not stamp degraded status: {e}"));
    }
    log(&format!("shard {spec}: QUARANTINED ({reason}); partial checkpoint kept"));
    St::Done(ShardFate::Degraded { restarts, reason })
}

/// Classifies an in-process shard error: can a restart help?
fn retryable(e: &StoreError) -> bool {
    match e {
        StoreError::Io(_) | StoreError::Incomplete(_) => true,
        StoreError::FingerprintMismatch { .. }
        | StoreError::Corrupt(_)
        | StoreError::SchemaVersion { .. }
        | StoreError::Locked(_) => false,
    }
}

/// The in-process twin of [`supervise_processes`], for the invariant-12
/// proptest: runs each shard's attempts with a fresh
/// [`ChaosFs`]([`KillMode::Panic`]) per incarnation, catching scripted
/// kill panics and retrying with resume — no real child processes, no
/// wall-clock backoff, so thousands of random scripts run in seconds.
///
/// Shards run sequentially (determinism of the *store* is what's under
/// test; trial results are order-independent by purity).
pub fn supervise_in_process(
    cfg: &CampaignConfig,
    dir: &Path,
    shards: u32,
    checkpoint_every: u64,
    script: &ChaosScript,
    max_restarts: u32,
) -> SuperviseOutcome {
    let mut fates = Vec::with_capacity(shards as usize);
    for i in 0..shards {
        let spec = ShardSpec::new(i, shards);
        let mut fate = None;
        for attempt in 0..=max_restarts {
            let fs: DynFs = Arc::new(ChaosFs::new(script.clone(), attempt, KillMode::Panic));
            let opts = ShardRunOptions {
                shard: spec,
                checkpoint_every,
                // Restarts resume; the first attempt may also implicitly
                // resume via dead-owner lock takeover.
                resume: attempt > 0,
            };
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_campaign_shard_on(&fs, dir, cfg, &opts, |_, _| {})
            }));
            match run {
                Ok(Ok(_)) => {
                    fate = Some(ShardFate::Completed { restarts: attempt });
                    break;
                }
                Ok(Err(e)) if !retryable(&e) => {
                    fate = Some(ShardFate::Degraded { restarts: attempt, reason: e.to_string() });
                    break;
                }
                Ok(Err(e)) => {
                    if attempt == max_restarts {
                        fate =
                            Some(ShardFate::Degraded { restarts: attempt, reason: e.to_string() });
                    }
                }
                Err(payload) => {
                    // A scripted kill is expected chaos; any other panic
                    // is a real bug and must fail the harness.
                    let is_kill = payload.downcast_ref::<String>().is_some_and(|s| s == CHAOS_KILL)
                        || payload.downcast_ref::<&str>().is_some_and(|s| *s == CHAOS_KILL);
                    if !is_kill {
                        std::panic::resume_unwind(payload);
                    }
                    if attempt == max_restarts {
                        fate = Some(ShardFate::Degraded {
                            restarts: attempt,
                            reason: "scripted kill on every attempt".to_string(),
                        });
                    }
                }
            }
        }
        let fate = fate.expect("attempt loop always sets a fate");
        if let ShardFate::Degraded { .. } = &fate {
            let (done, total) = read_status(dir, spec).map(|s| (s.done, s.total)).unwrap_or((0, 0));
            let _ = write_status(dir, spec, "degraded", done, total);
        }
        fates.push(fate);
    }
    SuperviseOutcome { fates }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let p = SupervisePolicy { seed: 7, ..SupervisePolicy::default() };
        // Pure: same inputs, same wait.
        assert_eq!(backoff_ms(&p, 0, 1), backoff_ms(&p, 0, 1));
        // Different shards/attempts jitter differently (with seed 7 these
        // happen to differ; the point is the schedule is a function).
        let w1 = backoff_ms(&p, 0, 1);
        let w2 = backoff_ms(&p, 1, 1);
        assert!(w1 >= p.backoff_base_ms && w1 < p.backoff_base_ms * 2);
        assert!(w2 >= p.backoff_base_ms && w2 < p.backoff_base_ms * 2);
        // Exponential growth up to the cap (+ jitter < base).
        let w5 = backoff_ms(&p, 0, 5);
        assert!(w5 >= p.backoff_cap_ms.min(p.backoff_base_ms * 16));
        let w20 = backoff_ms(&p, 0, 20);
        assert!(w20 < p.backoff_cap_ms + p.backoff_base_ms, "cap holds: {w20}");
        // Seed changes the jitter.
        let q = SupervisePolicy { seed: 8, ..p };
        assert!(
            (1..=6).any(|a| backoff_ms(&p, 0, a) != backoff_ms(&q, 0, a)),
            "jitter must depend on the seed"
        );
    }

    #[test]
    fn non_retryable_codes_match_the_exit_table() {
        use crate::cli::exit;
        for c in [exit::USAGE, exit::FINGERPRINT_MISMATCH, exit::LOCKED, exit::SCHEMA_VERSION] {
            assert!(non_retryable(c));
        }
        for c in [exit::OK, exit::STORE, exit::INCOMPLETE, exit::DEGRADED] {
            assert!(!non_retryable(c));
        }
    }
}
