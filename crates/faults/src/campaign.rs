//! Campaign runner: golden run, fault arming, outcome classification.
//!
//! Trials are embarrassingly parallel and run across worker threads
//! (`PARADET_THREADS`, see `paradet-par`). Each trial's RNG is seeded from
//! the campaign seed, the fault-site class, and the trial index — never
//! from a shared sequential stream — so the campaign result is
//! **bit-identical at any thread count**, and a trial's fault does not
//! depend on which other sites or trials the campaign happens to run.

use paradet_core::{
    run_recovery, PairedSystem, RecoveryDisposition, RecoveryPolicy, SimScratch, SystemConfig,
    TrialFaults,
};
use paradet_isa::{FReg, Program, Reg};
use paradet_mem::{ArrayFault, ArrayKind, Time};
use paradet_ooo::{ArmedFault, FaultKind, FaultTarget};
use paradet_workloads::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A fault-injection site class (each trial randomizes the strike point and
/// bit within the class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Architectural integer register bit (physical-register strike).
    IntReg,
    /// Architectural floating-point register bit.
    FpReg,
    /// Store datapath: value corrupted after leaving the register file.
    StoreValue,
    /// Store datapath: address corrupted.
    StoreAddr,
    /// Load destination register after LFU capture (§IV-C window).
    LoadValue,
    /// Load value before LFU capture (models the *naive* no-LFU design's
    /// vulnerability; with the LFU this class is covered by the ECC'd
    /// cache domain and out of scope).
    LoadCapture,
    /// Program-counter bit (control-flow fault).
    Pc,
    /// Hard stuck-at fault in one integer ALU.
    AluStuckAt,
    /// Multi-bit upset: two or three bits of one integer register flip in
    /// the same cycle (an MCU — increasingly common at small geometries;
    /// defeats per-word parity but not the checker's replay).
    IntRegMulti,
    /// Bit flip in a cache data array at the accessed line. Outside the
    /// detection sphere: the paper assumes ECC on the arrays (§IV-F), so
    /// the checker — which validates the *logged* values — is expected to
    /// miss it (SDC or masked, never detected).
    CacheArray,
    /// Bit flip in a DRAM array on the line *adjacent* to an accessed one
    /// (a disturbance/rowhammer-style upset). Also outside the detection
    /// sphere; expected SDC/masked.
    DramArray,
    /// Checker-side false positive (§IV-I over-detection): a bit of the
    /// detection hardware's own load-store log flips, so a check fails on
    /// a perfectly healthy main core.
    CheckerFalsePos,
    /// Checker-side missed detection: a lying checker suppresses every
    /// error report while a real store-datapath fault strikes the main
    /// core — the fault escapes as SDC by construction.
    CheckerMiss,
}

impl FaultSite {
    /// The legacy (main-core) sites, in reporting order. Kept distinct
    /// from [`extended`](FaultSite::extended) so the default campaign —
    /// and every golden table derived from it — is unchanged by the
    /// widened fault space.
    pub fn all() -> [FaultSite; 8] {
        [
            FaultSite::IntReg,
            FaultSite::FpReg,
            FaultSite::StoreValue,
            FaultSite::StoreAddr,
            FaultSite::LoadValue,
            FaultSite::LoadCapture,
            FaultSite::Pc,
            FaultSite::AluStuckAt,
        ]
    }

    /// Every site class, legacy and widened, in reporting order.
    pub fn extended() -> [FaultSite; 13] {
        [
            FaultSite::IntReg,
            FaultSite::FpReg,
            FaultSite::StoreValue,
            FaultSite::StoreAddr,
            FaultSite::LoadValue,
            FaultSite::LoadCapture,
            FaultSite::Pc,
            FaultSite::AluStuckAt,
            FaultSite::IntRegMulti,
            FaultSite::CacheArray,
            FaultSite::DramArray,
            FaultSite::CheckerFalsePos,
            FaultSite::CheckerMiss,
        ]
    }

    /// Whether faults at this site strike *inside* the paper's detection
    /// sphere (the main core + the logged dataflow). Array faults are
    /// outside it — the paper assumes ECC there — so campaigns must not
    /// count their escapes against checker coverage.
    pub fn in_detection_sphere(self) -> bool {
        !matches!(self, FaultSite::CacheArray | FaultSite::DramArray)
    }

    /// A stable identifier mixed into per-trial seeds. Tied to the site
    /// class itself (not its position in `CampaignConfig::sites`), so
    /// reordering or subsetting the site list never changes the faults any
    /// surviving (site, trial) pair draws.
    pub fn id(self) -> u64 {
        match self {
            FaultSite::IntReg => 0,
            FaultSite::FpReg => 1,
            FaultSite::StoreValue => 2,
            FaultSite::StoreAddr => 3,
            FaultSite::LoadValue => 4,
            FaultSite::LoadCapture => 5,
            FaultSite::Pc => 6,
            FaultSite::AluStuckAt => 7,
            FaultSite::IntRegMulti => 8,
            FaultSite::CacheArray => 9,
            FaultSite::DramArray => 10,
            FaultSite::CheckerFalsePos => 11,
            FaultSite::CheckerMiss => 12,
        }
    }

    /// A short display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::IntReg => "int-reg",
            FaultSite::FpReg => "fp-reg",
            FaultSite::StoreValue => "store-value",
            FaultSite::StoreAddr => "store-addr",
            FaultSite::LoadValue => "load-value",
            FaultSite::LoadCapture => "load-capture",
            FaultSite::Pc => "pc",
            FaultSite::AluStuckAt => "alu-stuck",
            FaultSite::IntRegMulti => "int-reg-multi",
            FaultSite::CacheArray => "cache-array",
            FaultSite::DramArray => "dram-array",
            FaultSite::CheckerFalsePos => "checker-false-pos",
            FaultSite::CheckerMiss => "checker-miss",
        }
    }

    /// Looks a site class up by its [`name`](FaultSite::name) — the inverse
    /// used when reading manifests and checkpoints back from disk.
    pub fn from_name(name: &str) -> Option<FaultSite> {
        FaultSite::extended().into_iter().find(|s| s.name() == name)
    }

    fn sample(self, rng: &mut StdRng) -> FaultTarget {
        match self {
            FaultSite::IntReg => FaultTarget::IntRegBit {
                // Bias toward low registers — they are the live ones in the
                // kernels, as in real register-pressure profiles.
                reg: Reg::from_index(rng.gen_range(1..16)),
                bit: rng.gen_range(0..64),
            },
            FaultSite::FpReg => FaultTarget::FpRegBit {
                reg: FReg::from_index(rng.gen_range(0..16)),
                bit: rng.gen_range(0..64),
            },
            FaultSite::StoreValue => FaultTarget::StoreValueBit { bit: rng.gen_range(0..64) },
            FaultSite::StoreAddr => FaultTarget::StoreAddrBit { bit: rng.gen_range(0..20) },
            FaultSite::LoadValue => FaultTarget::LoadValueBit { bit: rng.gen_range(0..64) },
            FaultSite::LoadCapture => FaultTarget::LoadCaptureBit { bit: rng.gen_range(0..64) },
            FaultSite::Pc => FaultTarget::PcBit { bit: rng.gen_range(2..16) },
            FaultSite::AluStuckAt => FaultTarget::AluStuckAt {
                unit: rng.gen_range(0..3),
                bit: rng.gen_range(0..64),
                value: rng.gen(),
            },
            // Widened sites don't reduce to a single main-core target;
            // their draws live in `trial_plan`.
            FaultSite::IntRegMulti
            | FaultSite::CacheArray
            | FaultSite::DramArray
            | FaultSite::CheckerFalsePos
            | FaultSite::CheckerMiss => {
                unreachable!("extended site {self:?} draws via trial_plan")
            }
        }
    }
}

/// Classification of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A checker raised an error (detection-only campaign: no recovery
    /// was attempted).
    Detected,
    /// Execution crashed; §IV-H semantics report the fault after checks.
    Crashed,
    /// State diverged from golden with no detection — a miss.
    SilentDataCorruption,
    /// No architectural difference and no detection.
    Masked,
    /// Detected, rolled back, and re-executed to a final state
    /// bit-identical to golden after `retries` rollbacks.
    Recovered {
        /// Rollbacks performed before an attempt validated end-to-end.
        retries: u32,
    },
    /// Detected but not outrunnable by rollback (a persistent fault):
    /// the remainder completed on the degraded known-good path, final
    /// state still bit-identical to golden — forward progress held.
    Degraded,
    /// Detected, but neither re-execution nor the degraded path reached
    /// the golden state: recovery failed.
    Unrecoverable,
}

impl Outcome {
    /// The stable tag written into shard checkpoints. `Recovered` drops
    /// its retry count here; the checkpoint record carries it in a
    /// separate field and the merge re-attaches it.
    pub fn tag(self) -> &'static str {
        match self {
            Outcome::Detected => "detected",
            Outcome::Crashed => "crashed",
            Outcome::SilentDataCorruption => "sdc",
            Outcome::Masked => "masked",
            Outcome::Recovered { .. } => "recovered",
            Outcome::Degraded => "degraded",
            Outcome::Unrecoverable => "unrecoverable",
        }
    }

    /// Parses a checkpoint [`tag`](Outcome::tag) back. A `recovered` tag
    /// parses as `Recovered { retries: 0 }`; the caller patches the count
    /// from the record's own field.
    pub fn from_tag(tag: &str) -> Option<Outcome> {
        [
            Outcome::Detected,
            Outcome::Crashed,
            Outcome::SilentDataCorruption,
            Outcome::Masked,
            Outcome::Recovered { retries: 0 },
            Outcome::Degraded,
            Outcome::Unrecoverable,
        ]
        .into_iter()
        .find(|o| o.tag() == tag)
    }
}

/// One trial's record.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The site class.
    pub site: FaultSite,
    /// The concrete fault.
    pub fault: ArmedFault,
    /// The classification.
    pub outcome: Outcome,
    /// Detection latency (error confirm time − fault commit-side seal
    /// time), when detected.
    pub detect_latency: Option<Time>,
    /// Modeled recovery cost in femtoseconds (aborted attempts + rollback
    /// penalties), when a recovery driver rolled back at least once.
    pub recovery_fs: Option<u64>,
}

/// Per-site aggregate counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteResult {
    /// Trials run.
    pub trials: u64,
    /// Detected by a checker.
    pub detected: u64,
    /// Crashed (reported after checks, §IV-H).
    pub crashed: u64,
    /// Missed (silent data corruption).
    pub sdc: u64,
    /// Masked.
    pub masked: u64,
    /// Detected and recovered to a golden-identical state by rollback.
    pub recovered: u64,
    /// Detected and completed on the degraded path (persistent fault).
    pub degraded: u64,
    /// Detected but recovery failed to reach the golden state.
    pub unrecoverable: u64,
    /// Total rollbacks across recovered/degraded/unrecoverable trials.
    pub retries_sum: u64,
    /// Total modeled recovery cost (femtoseconds) across those trials.
    pub recovery_fs_sum: u64,
}

impl paradet_stats::Mergeable for SiteResult {
    /// Per-site counts are integer tallies, so partial aggregates from
    /// different shards fold together exactly — the property
    /// `campaign-merge` relies on for byte-identical coverage tables.
    fn merge_from(&mut self, other: &Self) {
        self.trials += other.trials;
        self.detected += other.detected;
        self.crashed += other.crashed;
        self.sdc += other.sdc;
        self.masked += other.masked;
        self.recovered += other.recovered;
        self.degraded += other.degraded;
        self.unrecoverable += other.unrecoverable;
        self.retries_sum += other.retries_sum;
        self.recovery_fs_sum += other.recovery_fs_sum;
    }
}

impl SiteResult {
    /// Every outcome that began with a checker detection (the recovery
    /// dispositions are detections that were then acted on).
    pub fn detected_family(&self) -> u64 {
        self.detected + self.crashed + self.recovered + self.degraded + self.unrecoverable
    }

    /// Coverage over *unmasked* faults: detected-family / (trials −
    /// masked). Masked faults are benign; the paper's detection guarantee
    /// concerns faults that change architectural state.
    pub fn coverage(&self) -> f64 {
        let unmasked = self.trials - self.masked;
        if unmasked == 0 {
            1.0
        } else {
            self.detected_family() as f64 / unmasked as f64
        }
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// System configuration (defaults to the paper's Table I).
    pub system: SystemConfig,
    /// Workload to run.
    pub workload: Workload,
    /// Dynamic instructions per trial (the fault strikes uniformly within
    /// the first 80%).
    pub instrs: u64,
    /// Trials per site class.
    pub trials_per_site: u64,
    /// RNG seed (campaigns are fully reproducible).
    pub seed: u64,
    /// Site classes to exercise.
    pub sites: Vec<FaultSite>,
    /// Temporal behaviour of the main-core strikes (transient by
    /// default — the historic campaign semantics).
    pub fault_kind: FaultKind,
    /// When set, trials run under the detect → rollback → re-execute
    /// driver and classify into the recovery outcomes; when `None`,
    /// trials classify detection-only (the historic campaign).
    pub recovery: Option<RecoveryPolicy>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            system: SystemConfig::paper_default(),
            workload: Workload::Freqmine,
            instrs: 20_000,
            // Raised from 20 once trials ran in parallel: 50 per site keeps
            // a default campaign's 95% Wilson interval on a clean site
            // (50/50 detected) above 92% coverage, at ParaMedic-style
            // statistical confidence rather than smoke-test counts.
            trials_per_site: 50,
            seed: 42,
            sites: FaultSite::all().to_vec(),
            fault_kind: FaultKind::Transient,
            recovery: None,
        }
    }
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Every trial, in execution order.
    pub trials: Vec<TrialResult>,
    /// Aggregates per site, in `sites` order.
    pub per_site: Vec<(FaultSite, SiteResult)>,
}

impl CampaignResult {
    /// Overall coverage over unmasked faults, all sites pooled.
    pub fn overall_coverage(&self) -> f64 {
        let mut agg = SiteResult::default();
        for (_, s) in &self.per_site {
            paradet_stats::Mergeable::merge_from(&mut agg, s);
        }
        agg.coverage()
    }
}

/// Derives the RNG seed for stream `stream`, item `index` of a campaign
/// with base seed `seed` (SplitMix64-style finalizer).
///
/// Every trial draws from its own generator seeded this way, which is what
/// makes campaigns order-independent: the (seed, stream, index) triple — not
/// the position in any loop, nor the thread that happens to run it —
/// determines the fault.
fn derive_seed(seed: u64, stream: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of fault trial `trial` on `site`, for campaign seed `seed`.
///
/// Public so the test-suite can assert the stability guarantee directly.
pub fn trial_seed(seed: u64, site: FaultSite, trial: u64) -> u64 {
    derive_seed(seed, site.id(), trial)
}

/// The complete fault load drawn for trial `trial` on `site` in a campaign
/// with base seed `seed` and per-trial budget `instrs` — main-core strikes
/// plus any array or checker-side fault the widened site classes carry.
///
/// A pure function of its arguments: no shared RNG stream, so the fault is
/// independent of which other sites/trials the campaign runs, their order,
/// and the thread count. (`instrs` must be ≥ 2, which every campaign
/// satisfies by construction.) For the eight legacy sites the draw order
/// is the historic one (`at_instr`, then the target) — the same `(seed,
/// site, trial)` yields the same fault it always did.
///
/// `kind` sets only the temporal behaviour of the core strikes; the draws
/// themselves are kind-independent, so a checkpoint written by a transient
/// campaign and one written by a permanent campaign over the same grid
/// disagree only in outcomes, never in faults.
pub fn trial_plan(
    seed: u64,
    site: FaultSite,
    trial: u64,
    instrs: u64,
    kind: FaultKind,
) -> TrialFaults {
    let mut rng = StdRng::seed_from_u64(trial_seed(seed, site, trial));
    let at_instr = rng.gen_range(1..instrs * 8 / 10);
    let mut plan = TrialFaults { kind, ..TrialFaults::default() };
    match site {
        FaultSite::IntRegMulti => {
            // A multi-cell upset: 2–3 bits of one register, one event.
            let reg = Reg::from_index(rng.gen_range(1..16));
            let n = rng.gen_range(2..4);
            for _ in 0..n {
                let bit = rng.gen_range(0..64);
                plan.core.push(ArmedFault::new(at_instr, FaultTarget::IntRegBit { reg, bit }));
            }
        }
        FaultSite::CacheArray => {
            plan.array = Some(ArrayFault {
                array: ArrayKind::Cache,
                at_access: at_instr / 8,
                bit: rng.gen_range(0..8),
            });
        }
        FaultSite::DramArray => {
            plan.array = Some(ArrayFault {
                array: ArrayKind::Dram,
                at_access: at_instr / 8,
                bit: rng.gen_range(0..8),
            });
        }
        FaultSite::CheckerFalsePos => {
            plan.log_fault =
                Some((rng.gen_range(0..4), rng.gen_range(0..64), rng.gen_range(0..64)));
        }
        FaultSite::CheckerMiss => {
            plan.checker_miss = true;
            plan.core.push(ArmedFault::new(
                at_instr,
                FaultTarget::StoreValueBit { bit: rng.gen_range(0..64) },
            ));
        }
        legacy => {
            plan.core.push(ArmedFault::new(at_instr, legacy.sample(&mut rng)));
        }
    }
    plan
}

/// The representative [`ArmedFault`] of trial `trial` on `site` — the
/// first main-core strike of its [`trial_plan`], or a placeholder for
/// site classes with no core strike (array and false-positive faults).
///
/// For the eight legacy sites this is byte-for-byte the fault this
/// function has always returned.
pub fn trial_fault(seed: u64, site: FaultSite, trial: u64, instrs: u64) -> ArmedFault {
    let plan = trial_plan(seed, site, trial, instrs, FaultKind::Transient);
    plan.core.first().copied().unwrap_or_else(|| {
        let at = plan.array.map(|a| a.at_access).unwrap_or(0);
        ArmedFault::new(at, FaultTarget::PcBit { bit: 2 })
    })
}

/// Stream tag for over-detection trials (distinct from every `FaultSite::id`).
const OVERDETECTION_STREAM: u64 = 0xFACE;

/// The shared golden-run context every trial classifies against: the built
/// program plus the clean run's report and final architectural state.
///
/// One-shot campaigns build this once per campaign; each shard process of a
/// sharded campaign rebuilds it independently (the golden run is
/// deterministic, so every shard classifies against the identical
/// reference).
#[derive(Debug)]
pub(crate) struct Golden {
    pub(crate) program: Arc<Program>,
    report: paradet_core::RunReport,
    state: paradet_isa::ArchState,
    mem: paradet_isa::FlatMemory,
}

/// Builds the workload program and runs it clean.
pub(crate) fn prepare_golden(cfg: &CampaignConfig) -> Golden {
    let program = Arc::new(cfg.workload.build(cfg.workload.iters_for_instrs(cfg.instrs)));
    // Golden run (same detection config so timing-visible state like
    // instruction counts is comparable).
    let mut gold_sys = PairedSystem::new_shared(cfg.system, &program);
    let report = gold_sys.run(cfg.instrs);
    assert!(!report.detected(), "golden run must be clean");
    let state = gold_sys.core().committed_state().clone();
    let mem = gold_sys.hier().data.clone();
    Golden { program, report, state, mem }
}

/// Runs and classifies grid point `(site, trial)` — a pure function of the
/// campaign config and the point, which is what makes the grid shardable
/// and resumable: any process that evaluates the point gets the same
/// [`TrialResult`].
pub(crate) fn run_point(
    cfg: &CampaignConfig,
    golden: &Golden,
    site: FaultSite,
    trial: u64,
    scratch: &mut SimScratch,
) -> TrialResult {
    let fault = trial_fault(cfg.seed, site, trial, cfg.instrs);
    let plan = trial_plan(cfg.seed, site, trial, cfg.instrs, cfg.fault_kind);
    let (outcome, detect_latency, recovery_fs) = match &cfg.recovery {
        Some(policy) => run_trial_recover(cfg, golden, &plan, policy, scratch),
        None => {
            let (outcome, latency) = run_trial(cfg, golden, &plan, scratch);
            (outcome, latency, None)
        }
    };
    TrialResult { site, fault, outcome, detect_latency, recovery_fs }
}

/// Folds one trial into a site aggregate — the single tally shared by the
/// one-shot path, `campaign-merge`, and the partial merge, so every
/// producer counts identically.
fn fold_trial(agg: &mut SiteResult, trial: &TrialResult) {
    agg.trials += 1;
    match trial.outcome {
        Outcome::Detected => agg.detected += 1,
        Outcome::Crashed => agg.crashed += 1,
        Outcome::SilentDataCorruption => agg.sdc += 1,
        Outcome::Masked => agg.masked += 1,
        Outcome::Recovered { retries } => {
            agg.recovered += 1;
            agg.retries_sum += retries as u64;
        }
        Outcome::Degraded => agg.degraded += 1,
        Outcome::Unrecoverable => agg.unrecoverable += 1,
    }
    agg.recovery_fs_sum += trial.recovery_fs.unwrap_or(0);
}

/// Folds grid-ordered trials into per-site aggregates, in `sites` order.
/// Shared by the one-shot path and `campaign-merge`, so both produce the
/// same aggregation of the same trials.
pub(crate) fn aggregate(
    sites: &[FaultSite],
    trials: &[TrialResult],
) -> Vec<(FaultSite, SiteResult)> {
    let trials_per_site = trials.len() / sites.len().max(1);
    let mut per_site: Vec<(FaultSite, SiteResult)> = Vec::with_capacity(sites.len());
    for (i, &site) in sites.iter().enumerate() {
        let mut agg = SiteResult::default();
        let base = i * trials_per_site;
        for trial in &trials[base..base + trials_per_site] {
            fold_trial(&mut agg, trial);
        }
        per_site.push((site, agg));
    }
    per_site
}

/// [`aggregate`] over a *sparse* grid — empty slots (trials a degraded
/// shard never produced) simply don't count. Used by the partial merge;
/// on a fully-populated grid it tallies exactly like [`aggregate`].
pub(crate) fn aggregate_slots(
    sites: &[FaultSite],
    trials_per_site: u64,
    slots: &[Option<TrialResult>],
) -> Vec<(FaultSite, SiteResult)> {
    let mut per_site: Vec<(FaultSite, SiteResult)> = Vec::with_capacity(sites.len());
    for (i, &site) in sites.iter().enumerate() {
        let mut agg = SiteResult::default();
        let base = i * trials_per_site as usize;
        for slot in slots[base..base + trials_per_site as usize].iter().flatten() {
            fold_trial(&mut agg, slot);
        }
        per_site.push((site, agg));
    }
    per_site
}

/// Arms every fault of `plan` on a fresh system for one attempt. The
/// temporal kind expands here: an intermittent fault becomes `count`
/// strikes `period` retired instructions apart; transient and permanent
/// both arm once (a permanent *target* like a stuck-at ALU persists on
/// its own once triggered).
fn arm_plan(sys: &mut PairedSystem, plan: &TrialFaults) {
    for f in &plan.core {
        match plan.kind {
            FaultKind::Transient | FaultKind::Permanent => sys.arm_fault(*f),
            FaultKind::Intermittent { period, count } => {
                for k in 0..count as u64 {
                    sys.arm_fault(ArmedFault::new(f.at_instr + k * period.max(1), f.target));
                }
            }
        }
    }
    if let Some(a) = plan.array {
        sys.arm_array_fault(a);
    }
    if let Some((seal, entry, bit)) = plan.log_fault {
        sys.arm_log_fault(seal, entry, bit);
    }
    if plan.checker_miss {
        sys.arm_checker_miss();
    }
}

/// Runs one detection-only trial with the plan's faults armed.
fn run_trial(
    cfg: &CampaignConfig,
    golden: &Golden,
    plan: &TrialFaults,
    scratch: &mut SimScratch,
) -> (Outcome, Option<Time>) {
    let mut sys = PairedSystem::new_with_scratch(cfg.system, &golden.program, scratch);
    arm_plan(&mut sys, plan);
    let report = sys.run(cfg.instrs);
    let outcome = if report.detected() {
        let latency = report.first_error().map(|e| e.confirm_time.saturating_sub(Time::from_fs(0)));
        (Outcome::Detected, latency)
    } else if report.crashed {
        (Outcome::Crashed, None)
    } else {
        // No detection: compare final state with golden.
        let regs_differ =
            sys.core().committed_state().first_register_mismatch(&golden.state).is_some();
        let mem_differs = sys.hier().data.first_difference(&golden.mem).is_some();
        let counts_differ = report.instrs != golden.report.instrs;
        if regs_differ || mem_differs || counts_differ {
            (Outcome::SilentDataCorruption, None)
        } else {
            (Outcome::Masked, None)
        }
    };
    sys.recycle_into(scratch);
    outcome
}

/// Runs one trial under the detect → rollback → re-execute driver and
/// classifies its [`RecoveryDisposition`] against the golden run.
fn run_trial_recover(
    cfg: &CampaignConfig,
    golden: &Golden,
    plan: &TrialFaults,
    policy: &RecoveryPolicy,
    scratch: &mut SimScratch,
) -> (Outcome, Option<Time>, Option<u64>) {
    let r = run_recovery(&cfg.system, &golden.program, scratch, cfg.instrs, plan, policy);
    let matches_golden =
        r.final_state == golden.state && r.final_mem.first_difference(&golden.mem).is_none();
    let detect_latency = r.detected.then(|| Time::from_fs(r.detect_fs));
    let recovery_fs = (r.retries > 0).then_some(r.recovery_fs);
    let outcome = match r.disposition {
        // No check ever failed: classic undetected classification.
        RecoveryDisposition::Clean if r.crashed => Outcome::Crashed,
        RecoveryDisposition::Clean if matches_golden => Outcome::Masked,
        RecoveryDisposition::Clean => Outcome::SilentDataCorruption,
        // Rolled back and converged: recovery succeeded only if the final
        // state really is the golden one (the crown property); anything
        // else is a silent divergence wearing a recovered label.
        RecoveryDisposition::Recovered if matches_golden => {
            Outcome::Recovered { retries: r.retries }
        }
        RecoveryDisposition::Recovered => Outcome::SilentDataCorruption,
        // Forward progress on the degraded path counts only if it landed
        // on the golden state.
        RecoveryDisposition::Degraded if matches_golden => Outcome::Degraded,
        RecoveryDisposition::Degraded => Outcome::Unrecoverable,
        RecoveryDisposition::Unrecoverable => Outcome::Unrecoverable,
    };
    (outcome, detect_latency, recovery_fs)
}

/// Runs a full campaign: one golden run, then `trials_per_site` faulted
/// runs per site class, in parallel across `PARADET_THREADS` workers with
/// bit-identical results at any thread count.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let golden = prepare_golden(cfg);

    // One work item per (site, trial), in reporting order. Trial cost is
    // wildly uneven (a crash ends a run early; an SDC runs to the budget
    // plus a full state diff), so claim granularity 1 for balance.
    let points = crate::shard::grid_points(&cfg.sites, cfg.trials_per_site);
    let trials: Vec<TrialResult> =
        paradet_par::par_map_init_chunked(1, &points, SimScratch::new, |scratch, _, &(site, t)| {
            run_point(cfg, &golden, site, t, scratch)
        });

    // Aggregate per site; `trials` is site-major in `cfg.sites` order.
    let per_site = aggregate(&cfg.sites, &trials);
    CampaignResult { trials, per_site }
}

/// Exercises §IV-I over-detection: corrupts a log entry inside the
/// detection hardware on otherwise-clean runs; returns
/// `(false_positives, trials)`. Every false positive is an error report
/// with a perfectly healthy main core. Trials run in parallel with the same
/// per-trial seeding scheme (and so the same thread-count independence) as
/// [`run_campaign`].
pub fn run_overdetection_trials(cfg: &CampaignConfig, trials: u64) -> (u64, u64) {
    let program = Arc::new(cfg.workload.build(cfg.workload.iters_for_instrs(cfg.instrs)));
    let idx: Vec<u64> = (0..trials).collect();
    let detected = paradet_par::par_map_init_chunked(1, &idx, SimScratch::new, |scratch, _, &t| {
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, OVERDETECTION_STREAM, t));
        let mut sys = PairedSystem::new_with_scratch(cfg.system, &program, scratch);
        sys.arm_log_fault(rng.gen_range(0..4), rng.gen_range(0..64), rng.gen_range(0..64));
        let report = sys.run(cfg.instrs);
        let fp = report.detected();
        sys.recycle_into(scratch);
        fp
    });
    (detected.iter().filter(|&&fp| fp).count() as u64, trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(sites: Vec<FaultSite>, trials: u64) -> CampaignResult {
        let cfg = CampaignConfig {
            instrs: 4_000,
            trials_per_site: trials,
            sites,
            ..CampaignConfig::default()
        };
        run_campaign(&cfg)
    }

    #[test]
    fn store_value_faults_are_always_caught() {
        let r = small_campaign(vec![FaultSite::StoreValue], 8);
        let (_, s) = r.per_site[0];
        assert_eq!(s.sdc, 0, "store-value faults must never be SDC");
        assert!(s.coverage() >= 1.0 - 1e-9);
    }

    #[test]
    fn store_addr_faults_are_always_caught() {
        let r = small_campaign(vec![FaultSite::StoreAddr], 8);
        let (_, s) = r.per_site[0];
        assert_eq!(s.sdc, 0);
    }

    #[test]
    fn load_value_faults_are_caught_with_lfu() {
        let r = small_campaign(vec![FaultSite::LoadValue], 8);
        let (_, s) = r.per_site[0];
        assert_eq!(s.sdc, 0, "the LFU must close the load window");
    }

    #[test]
    fn load_capture_faults_escape_without_lfu() {
        // The ablation: naive commit-time forwarding lets pre-capture
        // corruption through as SDC.
        let cfg = CampaignConfig {
            system: SystemConfig { lfu_enabled: false, ..SystemConfig::paper_default() },
            instrs: 4_000,
            trials_per_site: 8,
            sites: vec![FaultSite::LoadCapture],
            ..CampaignConfig::default()
        };
        let r = run_campaign(&cfg);
        let (_, s) = r.per_site[0];
        assert!(s.sdc > 0, "without the LFU some pre-capture load faults must escape: {s:?}");
    }

    #[test]
    fn int_reg_faults_have_high_coverage() {
        let r = small_campaign(vec![FaultSite::IntReg], 10);
        let (_, s) = r.per_site[0];
        assert_eq!(s.sdc, 0, "unmasked register faults must be detected: {s:?}");
    }

    #[test]
    fn overdetection_reports_false_positives() {
        let cfg = CampaignConfig { instrs: 4_000, ..CampaignConfig::default() };
        let (fp, n) = run_overdetection_trials(&cfg, 6);
        // Most corrupted entries surface as (false) errors; a flipped bit
        // can occasionally be architecturally dead by segment end (e.g. the
        // high bits of a value whose low bits alone feed later addresses),
        // in which case the replay still validates.
        assert!(fp * 2 >= n, "expected mostly false positives, got {fp}/{n}");
        assert!(fp >= 1);
    }

    #[test]
    fn campaigns_are_reproducible() {
        let a = small_campaign(vec![FaultSite::StoreValue], 4);
        let b = small_campaign(vec![FaultSite::StoreValue], 4);
        for (x, y) in a.trials.iter().zip(b.trials.iter()) {
            assert_eq!(x.fault, y.fault);
            assert_eq!(x.outcome, y.outcome);
        }
    }
}
