//! The campaign-as-a-service layer: resumable shard execution and the
//! merge that folds shard checkpoints back into a one-shot-identical
//! [`CampaignResult`].
//!
//! Determinism contract (invariant 8 in ARCHITECTURE.md): for any shard
//! count, interruption schedule, and resume sequence,
//!
//! ```text
//! merge(shard 0/n, …, shard n−1/n)  ≡  run_campaign(cfg)
//! ```
//!
//! bit for bit — same `TrialResult`s in the same grid order, same per-site
//! aggregates, same rendered coverage table. The proof obligations:
//!
//! * each trial is a pure function of `(config, site, trial)`
//!   ([`run_point`](crate::campaign)), so *where/when* it runs is
//!   invisible;
//! * the partitioner's slices are disjoint and cover the grid
//!   ([`shard_points`]);
//! * checkpoints are written atomically, so a kill leaves a valid prefix
//!   of the slice and resume recomputes only the suffix;
//! * the merge places each record back at its grid index and aggregates
//!   with the same fold as the one-shot path
//!   ([`aggregate`](crate::campaign)).
//!
//! CI enforces the contract on every push (`campaign-shard` job): a
//! one-shot golden vs. a 2-shard run with one shard killed mid-run and
//! resumed, coverage CSVs diffed byte-for-byte.

use crate::campaign::{
    aggregate, prepare_golden, run_point, CampaignConfig, CampaignResult, SiteResult, TrialResult,
};
use crate::shard::{shard_points, ShardSpec};
use crate::store::{
    ensure_manifest, fingerprint, read_checkpoint, read_manifest, write_checkpoint, write_status,
    Manifest, ShardLock, StoreError, TrialRecord,
};
use crate::trial_fault;
use paradet_core::SimScratch;
use paradet_mem::Time;
use paradet_stats::{wilson_interval, Table};
use std::path::Path;

/// How a shard run should execute.
#[derive(Debug, Clone, Copy)]
pub struct ShardRunOptions {
    /// Which slice of the grid this process owns.
    pub shard: ShardSpec,
    /// Checkpoint (and heartbeat) after this many completed trials.
    pub checkpoint_every: u64,
    /// Continue from an existing checkpoint and take over a stale lock.
    pub resume: bool,
}

impl Default for ShardRunOptions {
    fn default() -> ShardRunOptions {
        ShardRunOptions { shard: ShardSpec::SOLO, checkpoint_every: 25, resume: false }
    }
}

/// What a completed (or resumed-to-completion) shard run did.
#[derive(Debug, Clone, Copy)]
pub struct ShardRunSummary {
    /// Trials already in the checkpoint when the run started.
    pub resumed_from: u64,
    /// Trials completed by the end of the run (== `total`).
    pub done: u64,
    /// Trials in this shard's slice.
    pub total: u64,
}

/// Runs (or resumes) one shard of `cfg` in `dir`, checkpointing every
/// `opts.checkpoint_every` trials. `on_checkpoint(done, total)` fires after
/// each checkpoint write — the campaign's own fault-injection harness uses
/// it to abort the process mid-run and prove resume determinism.
///
/// # Errors
///
/// Fails if the directory's manifest or checkpoint fingerprints don't match
/// `cfg` (see [`StoreError::FingerprintMismatch`]), if the shard is locked
/// by another (live or killed) run and `opts.resume` is not set, or on I/O.
pub fn run_campaign_shard(
    dir: &Path,
    cfg: &CampaignConfig,
    opts: &ShardRunOptions,
    mut on_checkpoint: impl FnMut(u64, u64),
) -> Result<ShardRunSummary, StoreError> {
    let fp = fingerprint(cfg).hex();
    ensure_manifest(dir, cfg, opts.shard.count())?;
    let _lock = ShardLock::acquire(dir, opts.shard, opts.resume)?;

    let points = shard_points(&cfg.sites, cfg.trials_per_site, opts.shard);
    let total = points.len() as u64;

    let mut records: Vec<TrialRecord> = match read_checkpoint(dir, opts.shard, &fp)? {
        Some(existing) if opts.resume => existing,
        Some(_) => {
            return Err(StoreError::Locked(format!(
                "checkpoint for shard {} already exists in {}; pass --resume to continue it \
                 (or use a fresh directory)",
                opts.shard,
                dir.display()
            )))
        }
        None => Vec::new(),
    };
    // A checkpoint is always a prefix of the slice in slice order; verify
    // so a corrupted or foreign file can't silently misalign the grid.
    if records.len() > points.len() {
        return Err(StoreError::Corrupt(format!(
            "shard {} checkpoint has {} records for a {}-point slice",
            opts.shard,
            records.len(),
            points.len()
        )));
    }
    for (r, &(site, trial)) in records.iter().zip(&points) {
        if r.site != site || r.trial != trial {
            return Err(StoreError::Corrupt(format!(
                "shard {} checkpoint diverges from its slice at ({}, {})",
                opts.shard,
                r.site.name(),
                r.trial
            )));
        }
    }
    let resumed_from = records.len() as u64;
    write_status(dir, opts.shard, "running", resumed_from, total)?;

    if resumed_from < total {
        let golden = prepare_golden(cfg);
        let every = opts.checkpoint_every.max(1) as usize;
        let mut at = resumed_from as usize;
        while at < points.len() {
            let chunk = &points[at..(at + every).min(points.len())];
            let batch: Vec<TrialResult> = paradet_par::par_map_init_chunked(
                1,
                chunk,
                SimScratch::new,
                |scratch, _, &(site, t)| run_point(cfg, &golden, site, t, scratch),
            );
            // par_map_* is order-preserving: batch[j] is chunk[j]'s result.
            records.extend(batch.iter().zip(chunk).map(|(t, &(site, trial))| {
                debug_assert_eq!(t.site, site);
                let retries = match t.outcome {
                    crate::Outcome::Recovered { retries } => Some(retries),
                    _ => None,
                };
                TrialRecord {
                    site,
                    trial,
                    outcome: t.outcome,
                    latency_fs: t.detect_latency.map(Time::as_fs),
                    retries,
                    recovery_fs: t.recovery_fs,
                }
            }));
            at += chunk.len();
            write_checkpoint(dir, opts.shard, &fp, &records)?;
            write_status(dir, opts.shard, "running", at as u64, total)?;
            on_checkpoint(at as u64, total);
        }
    } else {
        // Nothing left (a resume of a finished shard): still refresh the
        // checkpoint so the file exists even for an empty slice.
        write_checkpoint(dir, opts.shard, &fp, &records)?;
    }
    write_status(dir, opts.shard, "done", total, total)?;
    Ok(ShardRunSummary { resumed_from, done: total, total })
}

/// Merges every shard checkpoint in `dir` into the campaign result,
/// byte-identical to [`run_campaign`](crate::run_campaign) on the same
/// configuration.
///
/// With `expect`, the directory's manifest fingerprint must match the
/// expected configuration — merging a directory from a different campaign
/// (other seed, workload, fault model, or trial count) is refused with
/// [`StoreError::FingerprintMismatch`] rather than producing a plausible
/// but wrong table.
///
/// # Errors
///
/// Also fails if any shard checkpoint is missing or incomplete (the error
/// names the shard to resume) or if any store file is corrupt.
pub fn merge_campaign(
    dir: &Path,
    expect: Option<&CampaignConfig>,
) -> Result<(Manifest, CampaignResult), StoreError> {
    let manifest = read_manifest(dir)?;
    if let Some(cfg) = expect {
        let mine = fingerprint(cfg).hex();
        if manifest.fingerprint != mine {
            return Err(StoreError::FingerprintMismatch {
                expected: mine,
                found: manifest.fingerprint.clone(),
                detail: format!(
                    "{} (workload={}, seed={}, instrs={}, trials_per_site={})",
                    crate::store::manifest_path(dir).display(),
                    manifest.workload,
                    manifest.seed,
                    manifest.instrs,
                    manifest.trials_per_site
                ),
            });
        }
    }
    let sites = manifest.site_list()?;
    let grid_len = sites.len() * manifest.trials_per_site as usize;
    let mut slots: Vec<Option<TrialResult>> = vec![None; grid_len];

    for i in 0..manifest.shards {
        let shard = ShardSpec::new(i, manifest.shards);
        let points = shard_points(&sites, manifest.trials_per_site, shard);
        let records = read_checkpoint(dir, shard, &manifest.fingerprint)?.ok_or_else(|| {
            StoreError::Incomplete(format!(
                "shard {shard} has no checkpoint in {} — run it first",
                dir.display()
            ))
        })?;
        if records.len() < points.len() {
            return Err(StoreError::Incomplete(format!(
                "shard {shard} has {}/{} trials — resume it before merging",
                records.len(),
                points.len()
            )));
        }
        for (r, &(site, trial)) in records.iter().zip(&points) {
            if r.site != site || r.trial != trial {
                return Err(StoreError::Corrupt(format!(
                    "shard {shard} checkpoint diverges from its slice at ({}, {})",
                    r.site.name(),
                    r.trial
                )));
            }
            let site_pos = sites.iter().position(|&s| s == site).expect("site from slice");
            let g = site_pos * manifest.trials_per_site as usize + trial as usize;
            // The fault is reconstructed, not stored: it is pure in
            // (seed, site, trial), which is the whole reason sharding can
            // be bit-identical.
            let fault = trial_fault(manifest.seed, site, trial, manifest.instrs);
            slots[g] = Some(TrialResult {
                site,
                fault,
                outcome: r.outcome,
                detect_latency: r.latency_fs.map(Time::from_fs),
                recovery_fs: r.recovery_fs,
            });
        }
    }

    let trials: Vec<TrialResult> = slots
        .into_iter()
        .enumerate()
        .map(|(g, s)| {
            s.ok_or_else(|| {
                StoreError::Incomplete(format!("grid point {g} was produced by no shard"))
            })
        })
        .collect::<Result<_, _>>()?;
    let per_site = aggregate(&sites, &trials);
    Ok((manifest, CampaignResult { trials, per_site }))
}

/// Convenience used by tests and the bench sharded path: runs every shard
/// of `cfg` (serially, in this process) into `dir`, then merges.
pub fn run_campaign_sharded(
    cfg: &CampaignConfig,
    shards: u32,
    dir: &Path,
) -> Result<CampaignResult, StoreError> {
    for i in 0..shards {
        let opts = ShardRunOptions { shard: ShardSpec::new(i, shards), ..Default::default() };
        run_campaign_shard(dir, cfg, &opts, |_, _| {})?;
    }
    Ok(merge_campaign(dir, Some(cfg))?.1)
}

/// Formats the 95% Wilson interval on `successes/trials` as a percentage
/// range — the exact cell format of the `fault_coverage` experiment.
fn ci95(successes: u64, trials: u64) -> String {
    let (lo, hi) = wilson_interval(successes, trials, 1.96);
    format!("[{:.0}%, {:.0}%]", lo * 100.0, hi * 100.0)
}

/// The column headers of a coverage table (shared with the
/// `fault_coverage` experiment so every producer agrees byte-for-byte).
pub const COVERAGE_HEADER: [&str; 9] = [
    "workload",
    "site",
    "trials",
    "detected",
    "crashed",
    "SDC",
    "masked",
    "coverage",
    "cov 95% CI",
];

/// One coverage row: counts, the point rate, and its 95% Wilson interval
/// over unmasked faults. The single source of the cell formatting — the
/// one-shot experiment table, `campaignd --one-shot`, and `campaign-merge`
/// all render through here, which is what makes "merged table ≡ one-shot
/// table" a byte-level statement.
pub fn coverage_cells(label: &str, site: &str, s: &SiteResult) -> Vec<String> {
    let unmasked = s.trials - s.masked;
    vec![
        label.to_string(),
        site.to_string(),
        s.trials.to_string(),
        s.detected.to_string(),
        s.crashed.to_string(),
        s.sdc.to_string(),
        s.masked.to_string(),
        format!("{:.0}%", s.coverage() * 100.0),
        ci95(s.detected_family(), unmasked),
    ]
}

/// Renders a campaign's per-site coverage as the standard table.
pub fn coverage_table(label: &str, result: &CampaignResult) -> Table {
    let mut t = Table::new("Fault-injection coverage (per unmasked fault)", &COVERAGE_HEADER);
    for (site, s) in &result.per_site {
        t.row(&coverage_cells(label, site.name(), s));
    }
    t
}

/// The column headers of a recovery (coverage-by-fault-class) table —
/// shared by the `recovery` experiment, `campaignd`, and `campaign-merge`
/// so every producer agrees byte-for-byte.
pub const RECOVERY_HEADER: [&str; 12] = [
    "workload",
    "kind",
    "site",
    "trials",
    "recovered",
    "degraded",
    "unrecov",
    "crashed",
    "SDC",
    "masked",
    "coverage",
    "mean retries",
];

/// One recovery row: per-class recovery dispositions and the mean retry
/// count over recovered trials. The single source of the cell formatting,
/// for the same byte-identity reason as [`coverage_cells`].
pub fn recovery_cells(label: &str, kind: &str, site: &str, s: &SiteResult) -> Vec<String> {
    let mean_retries = if s.recovered == 0 {
        "-".to_string()
    } else {
        format!("{:.2}", s.retries_sum as f64 / s.recovered as f64)
    };
    vec![
        label.to_string(),
        kind.to_string(),
        site.to_string(),
        s.trials.to_string(),
        s.recovered.to_string(),
        s.degraded.to_string(),
        s.unrecoverable.to_string(),
        s.crashed.to_string(),
        s.sdc.to_string(),
        s.masked.to_string(),
        format!("{:.0}%", s.coverage() * 100.0),
        mean_retries,
    ]
}

/// Renders a recovery campaign's per-site dispositions as the standard
/// coverage-by-fault-class table.
pub fn recovery_table(label: &str, kind: &str, result: &CampaignResult) -> Table {
    let mut t =
        Table::new("Fault recovery by class (detect → rollback → re-execute)", &RECOVERY_HEADER);
    for (site, s) in &result.per_site {
        t.row(&recovery_cells(label, kind, site.name(), s));
    }
    t
}
