//! The campaign-as-a-service layer: resumable shard execution and the
//! merge that folds shard checkpoints back into a one-shot-identical
//! [`CampaignResult`].
//!
//! Determinism contract (invariant 8 in ARCHITECTURE.md): for any shard
//! count, interruption schedule, and resume sequence,
//!
//! ```text
//! merge(shard 0/n, …, shard n−1/n)  ≡  run_campaign(cfg)
//! ```
//!
//! bit for bit — same `TrialResult`s in the same grid order, same per-site
//! aggregates, same rendered coverage table. The proof obligations:
//!
//! * each trial is a pure function of `(config, site, trial)`
//!   ([`run_point`](crate::campaign)), so *where/when* it runs is
//!   invisible;
//! * the partitioner's slices are disjoint and cover the grid
//!   ([`shard_points`]);
//! * checkpoints are written atomically, so a kill leaves a valid prefix
//!   of the slice and resume recomputes only the suffix;
//! * the merge places each record back at its grid index and aggregates
//!   with the same fold as the one-shot path
//!   ([`aggregate`](crate::campaign)).
//!
//! Invariant 12 strengthens this under *injected I/O faults* (see
//! [`chaosfs`](crate::chaosfs) and [`supervisor`](crate::supervisor)):
//! whatever a scripted chaos run does to the store, a supervised campaign
//! either merges byte-identical to the one-shot golden or fails with a
//! typed [`StoreError`] / an explicit [`merge_campaign_partial`] — never a
//! silently wrong table. CI enforces both contracts on every push
//! (`campaign-shard` and `campaign-chaos` jobs).

use crate::campaign::{
    aggregate, aggregate_slots, prepare_golden, run_point, CampaignConfig, CampaignResult,
    SiteResult, TrialResult,
};
use crate::shard::{shard_points, ShardSpec};
use crate::store::{
    ensure_manifest_on, fingerprint, read_checkpoint_on, read_manifest_on, read_status_on, real_fs,
    sweep_stale_tmp_on, write_checkpoint_on, write_status_on, DynFs, Manifest, ShardLock,
    StoreError, TrialRecord,
};
use crate::trial_fault;
use paradet_core::SimScratch;
use paradet_mem::Time;
use paradet_stats::{wilson_interval, Table};
use std::path::Path;

/// How a shard run should execute.
#[derive(Debug, Clone, Copy)]
pub struct ShardRunOptions {
    /// Which slice of the grid this process owns.
    pub shard: ShardSpec,
    /// Checkpoint (and heartbeat) after this many completed trials.
    pub checkpoint_every: u64,
    /// Continue from an existing checkpoint. A stale lock from a *dead*
    /// owner is taken over (and resumed) automatically either way; this
    /// flag is only needed to re-enter a directory whose shard finished
    /// or exited cleanly.
    pub resume: bool,
}

impl Default for ShardRunOptions {
    fn default() -> ShardRunOptions {
        ShardRunOptions { shard: ShardSpec::SOLO, checkpoint_every: 25, resume: false }
    }
}

/// What a completed (or resumed-to-completion) shard run did.
#[derive(Debug, Clone, Copy)]
pub struct ShardRunSummary {
    /// Trials already in the checkpoint when the run started.
    pub resumed_from: u64,
    /// Trials completed by the end of the run (== `total`).
    pub done: u64,
    /// Trials in this shard's slice.
    pub total: u64,
}

/// Runs (or resumes) one shard of `cfg` in `dir` through `fs`,
/// checkpointing every `opts.checkpoint_every` trials.
/// `on_checkpoint(done, total)` fires after each checkpoint write — the
/// campaign's own fault-injection harness uses it to abort the process
/// mid-run and prove resume determinism.
///
/// On entry the shard lock is taken (a dead owner's stale lock — gone
/// pid, or a pid the kernel recycled onto a different process — is taken
/// over automatically and treated as an implicit resume), then stranded
/// `*.tmp` staging files are swept.
///
/// # Errors
///
/// Fails if the directory's manifest or checkpoint fingerprints don't
/// match `cfg` (see [`StoreError::FingerprintMismatch`]), if the shard's
/// lock is held by a live process, if a finished checkpoint exists and
/// `opts.resume` is not set, or on I/O.
pub fn run_campaign_shard_on(
    fs: &DynFs,
    dir: &Path,
    cfg: &CampaignConfig,
    opts: &ShardRunOptions,
    mut on_checkpoint: impl FnMut(u64, u64),
) -> Result<ShardRunSummary, StoreError> {
    let fp = fingerprint(cfg).hex();
    ensure_manifest_on(fs.as_ref(), dir, cfg, opts.shard.count())?;
    let (_lock, took_over_dead) = ShardLock::acquire_on(fs, dir, opts.shard)?;
    sweep_stale_tmp_on(fs.as_ref(), dir);
    // A dead owner's lock means a kill mid-slice: resuming its checkpoint
    // is the only correct continuation, no flag ceremony required.
    let resume = opts.resume || took_over_dead;

    let points = shard_points(&cfg.sites, cfg.trials_per_site, opts.shard);
    let total = points.len() as u64;

    let mut records: Vec<TrialRecord> = match read_checkpoint_on(fs.as_ref(), dir, opts.shard, &fp)?
    {
        Some(existing) if resume => existing,
        Some(_) => {
            return Err(StoreError::Locked(format!(
                "checkpoint for shard {} already exists in {}; pass --resume to continue it \
                 (or use a fresh directory)",
                opts.shard,
                dir.display()
            )))
        }
        None => Vec::new(),
    };
    // A checkpoint is always a prefix of the slice in slice order; verify
    // so a corrupted or foreign file can't silently misalign the grid.
    if records.len() > points.len() {
        return Err(StoreError::Corrupt(format!(
            "shard {} checkpoint has {} records for a {}-point slice",
            opts.shard,
            records.len(),
            points.len()
        )));
    }
    for (r, &(site, trial)) in records.iter().zip(&points) {
        if r.site != site || r.trial != trial {
            return Err(StoreError::Corrupt(format!(
                "shard {} checkpoint diverges from its slice at ({}, {})",
                opts.shard,
                r.site.name(),
                r.trial
            )));
        }
    }
    let resumed_from = records.len() as u64;
    write_status_on(fs.as_ref(), dir, opts.shard, "running", resumed_from, total)?;

    if resumed_from < total {
        let golden = prepare_golden(cfg);
        let every = opts.checkpoint_every.max(1) as usize;
        let mut at = resumed_from as usize;
        while at < points.len() {
            let chunk = &points[at..(at + every).min(points.len())];
            let batch: Vec<TrialResult> = paradet_par::par_map_init_chunked(
                1,
                chunk,
                SimScratch::new,
                |scratch, _, &(site, t)| run_point(cfg, &golden, site, t, scratch),
            );
            // par_map_* is order-preserving: batch[j] is chunk[j]'s result.
            records.extend(batch.iter().zip(chunk).map(|(t, &(site, trial))| {
                debug_assert_eq!(t.site, site);
                let retries = match t.outcome {
                    crate::Outcome::Recovered { retries } => Some(retries),
                    _ => None,
                };
                TrialRecord {
                    site,
                    trial,
                    outcome: t.outcome,
                    latency_fs: t.detect_latency.map(Time::as_fs),
                    retries,
                    recovery_fs: t.recovery_fs,
                }
            }));
            at += chunk.len();
            write_checkpoint_on(fs.as_ref(), dir, opts.shard, &fp, &records)?;
            write_status_on(fs.as_ref(), dir, opts.shard, "running", at as u64, total)?;
            on_checkpoint(at as u64, total);
        }
    } else {
        // Nothing left (a resume of a finished shard): still refresh the
        // checkpoint so the file exists even for an empty slice.
        write_checkpoint_on(fs.as_ref(), dir, opts.shard, &fp, &records)?;
    }
    write_status_on(fs.as_ref(), dir, opts.shard, "done", total, total)?;
    Ok(ShardRunSummary { resumed_from, done: total, total })
}

/// [`run_campaign_shard_on`] over the real filesystem.
pub fn run_campaign_shard(
    dir: &Path,
    cfg: &CampaignConfig,
    opts: &ShardRunOptions,
    on_checkpoint: impl FnMut(u64, u64),
) -> Result<ShardRunSummary, StoreError> {
    run_campaign_shard_on(&real_fs(), dir, cfg, opts, on_checkpoint)
}

fn check_expected(
    dir: &Path,
    manifest: &Manifest,
    expect: Option<&CampaignConfig>,
) -> Result<(), StoreError> {
    if let Some(cfg) = expect {
        let mine = fingerprint(cfg).hex();
        if manifest.fingerprint != mine {
            return Err(StoreError::FingerprintMismatch {
                expected: mine,
                found: manifest.fingerprint.clone(),
                detail: format!(
                    "{} (workload={}, seed={}, instrs={}, trials_per_site={})",
                    crate::store::manifest_path(dir).display(),
                    manifest.workload,
                    manifest.seed,
                    manifest.instrs,
                    manifest.trials_per_site
                ),
            });
        }
    }
    Ok(())
}

/// Reconstructs one checkpoint record at its grid slot. The fault is
/// reconstructed, not stored: it is pure in `(seed, site, trial)`, which
/// is the whole reason sharding can be bit-identical.
fn place_record(
    manifest: &Manifest,
    sites: &[crate::campaign::FaultSite],
    slots: &mut [Option<TrialResult>],
    r: &TrialRecord,
) {
    let site_pos = sites.iter().position(|&s| s == r.site).expect("site from slice");
    let g = site_pos * manifest.trials_per_site as usize + r.trial as usize;
    let fault = trial_fault(manifest.seed, r.site, r.trial, manifest.instrs);
    slots[g] = Some(TrialResult {
        site: r.site,
        fault,
        outcome: r.outcome,
        detect_latency: r.latency_fs.map(Time::from_fs),
        recovery_fs: r.recovery_fs,
    });
}

/// Merges every shard checkpoint in `dir` into the campaign result,
/// byte-identical to [`run_campaign`](crate::run_campaign) on the same
/// configuration.
///
/// With `expect`, the directory's manifest fingerprint must match the
/// expected configuration — merging a directory from a different campaign
/// (other seed, workload, fault model, or trial count) is refused with
/// [`StoreError::FingerprintMismatch`] rather than producing a plausible
/// but wrong table.
///
/// # Errors
///
/// Also fails if any shard checkpoint is missing or incomplete (the error
/// names the shard to resume) or if any store file is corrupt. For a
/// best-effort render of an incomplete campaign, use
/// [`merge_campaign_partial`] instead.
pub fn merge_campaign_on(
    fs: &DynFs,
    dir: &Path,
    expect: Option<&CampaignConfig>,
) -> Result<(Manifest, CampaignResult), StoreError> {
    let manifest = read_manifest_on(fs.as_ref(), dir)?;
    check_expected(dir, &manifest, expect)?;
    let sites = manifest.site_list()?;
    let grid_len = sites.len() * manifest.trials_per_site as usize;
    let mut slots: Vec<Option<TrialResult>> = vec![None; grid_len];

    for i in 0..manifest.shards {
        let shard = ShardSpec::new(i, manifest.shards);
        let points = shard_points(&sites, manifest.trials_per_site, shard);
        let records = read_checkpoint_on(fs.as_ref(), dir, shard, &manifest.fingerprint)?
            .ok_or_else(|| {
                StoreError::Incomplete(format!(
                    "shard {shard} has no checkpoint in {} — run it first",
                    dir.display()
                ))
            })?;
        if records.len() < points.len() {
            return Err(StoreError::Incomplete(format!(
                "shard {shard} has {}/{} trials — resume it before merging",
                records.len(),
                points.len()
            )));
        }
        for (r, &(site, trial)) in records.iter().zip(&points) {
            if r.site != site || r.trial != trial {
                return Err(StoreError::Corrupt(format!(
                    "shard {shard} checkpoint diverges from its slice at ({}, {})",
                    r.site.name(),
                    r.trial
                )));
            }
            place_record(&manifest, &sites, &mut slots, r);
        }
    }

    let trials: Vec<TrialResult> = slots
        .into_iter()
        .enumerate()
        .map(|(g, s)| {
            s.ok_or_else(|| {
                StoreError::Incomplete(format!("grid point {g} was produced by no shard"))
            })
        })
        .collect::<Result<_, _>>()?;
    let per_site = aggregate(&sites, &trials);
    Ok((manifest, CampaignResult { trials, per_site }))
}

/// [`merge_campaign_on`] over the real filesystem.
pub fn merge_campaign(
    dir: &Path,
    expect: Option<&CampaignConfig>,
) -> Result<(Manifest, CampaignResult), StoreError> {
    merge_campaign_on(&real_fs(), dir, expect)
}

/// One shard's contribution to a partial merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCompleteness {
    /// The shard.
    pub shard: ShardSpec,
    /// Trials this shard's checkpoint contributed.
    pub done: u64,
    /// Trials in the shard's slice.
    pub total: u64,
    /// `done`, `partial`, `degraded` (the supervisor quarantined it),
    /// `missing` (no checkpoint), or `corrupt` (checkpoint refused —
    /// contributes nothing rather than risk a wrong table).
    pub state: String,
}

/// A best-effort merge of an incomplete campaign, with explicit per-shard
/// completeness accounting. Unlike [`merge_campaign`] this never refuses
/// for missing trials: absent grid points simply don't count, and the
/// caller renders *how much* of the campaign the table reflects.
#[derive(Debug)]
pub struct PartialMerge {
    /// The directory's manifest.
    pub manifest: Manifest,
    /// Per-shard accounting, shard order.
    pub completeness: Vec<ShardCompleteness>,
    /// The merged result over the populated grid points only.
    pub result: CampaignResult,
    /// Grid points populated.
    pub completed: u64,
    /// Grid size.
    pub grid: u64,
}

impl PartialMerge {
    /// Whether every grid point was populated (the partial merge of a
    /// complete campaign — its tables match [`merge_campaign`]'s exactly).
    pub fn is_complete(&self) -> bool {
        self.completed == self.grid
    }
}

/// Merges whatever shard checkpoints `dir` holds, however incomplete —
/// the explicit hand-off target when a supervised campaign quarantines a
/// shard as degraded.
///
/// Per shard: a missing checkpoint contributes nothing (`missing`); a
/// checkpoint that is refused (corrupt, foreign fingerprint, wrong
/// schema) contributes nothing (`corrupt`) — a partial table must still
/// never include a record that failed verification; a valid prefix
/// contributes its records (`partial`/`done`, or the status heartbeat's
/// `degraded` tag when the supervisor quarantined the shard).
///
/// # Errors
///
/// Only an unreadable/foreign manifest (the directory's identity) is
/// fatal; everything below it degrades to accounting.
pub fn merge_campaign_partial_on(
    fs: &DynFs,
    dir: &Path,
    expect: Option<&CampaignConfig>,
) -> Result<PartialMerge, StoreError> {
    let manifest = read_manifest_on(fs.as_ref(), dir)?;
    check_expected(dir, &manifest, expect)?;
    let sites = manifest.site_list()?;
    let grid = sites.len() as u64 * manifest.trials_per_site;
    let mut slots: Vec<Option<TrialResult>> = vec![None; grid as usize];
    let mut completeness = Vec::with_capacity(manifest.shards as usize);

    for i in 0..manifest.shards {
        let shard = ShardSpec::new(i, manifest.shards);
        let points = shard_points(&sites, manifest.trials_per_site, shard);
        let total = points.len() as u64;
        let (done, mut state) =
            match read_checkpoint_on(fs.as_ref(), dir, shard, &manifest.fingerprint) {
                Ok(Some(records)) => {
                    // Same prefix discipline as the strict merge: stop at the
                    // first divergence, keep the verified prefix.
                    let mut done = 0u64;
                    for (r, &(site, trial)) in records.iter().zip(&points) {
                        if r.site != site || r.trial != trial {
                            break;
                        }
                        place_record(&manifest, &sites, &mut slots, r);
                        done += 1;
                    }
                    let state = if done == total { "done" } else { "partial" };
                    (done, state.to_string())
                }
                Ok(None) => (0, "missing".to_string()),
                Err(_) => (0, "corrupt".to_string()),
            };
        // The supervisor's quarantine verdict (in the status heartbeat)
        // outranks the generic "partial" label.
        if state != "corrupt" && state != "done" {
            if let Some(s) = read_status_on(fs.as_ref(), dir, shard) {
                if s.state == "degraded" {
                    state = "degraded".to_string();
                }
            }
        }
        completeness.push(ShardCompleteness { shard, done, total, state });
    }

    let completed = slots.iter().filter(|s| s.is_some()).count() as u64;
    let per_site = aggregate_slots(&sites, manifest.trials_per_site, &slots);
    let trials: Vec<TrialResult> = slots.into_iter().flatten().collect();
    Ok(PartialMerge {
        manifest,
        completeness,
        result: CampaignResult { trials, per_site },
        completed,
        grid,
    })
}

/// [`merge_campaign_partial_on`] over the real filesystem.
pub fn merge_campaign_partial(
    dir: &Path,
    expect: Option<&CampaignConfig>,
) -> Result<PartialMerge, StoreError> {
    merge_campaign_partial_on(&real_fs(), dir, expect)
}

/// Convenience used by tests and the bench sharded path: runs every shard
/// of `cfg` (serially, in this process) into `dir`, then merges.
pub fn run_campaign_sharded(
    cfg: &CampaignConfig,
    shards: u32,
    dir: &Path,
) -> Result<CampaignResult, StoreError> {
    for i in 0..shards {
        let opts = ShardRunOptions { shard: ShardSpec::new(i, shards), ..Default::default() };
        run_campaign_shard(dir, cfg, &opts, |_, _| {})?;
    }
    Ok(merge_campaign(dir, Some(cfg))?.1)
}

/// Formats the 95% Wilson interval on `successes/trials` as a percentage
/// range — the exact cell format of the `fault_coverage` experiment.
fn ci95(successes: u64, trials: u64) -> String {
    let (lo, hi) = wilson_interval(successes, trials, 1.96);
    format!("[{:.0}%, {:.0}%]", lo * 100.0, hi * 100.0)
}

/// The column headers of a coverage table (shared with the
/// `fault_coverage` experiment so every producer agrees byte-for-byte).
pub const COVERAGE_HEADER: [&str; 9] = [
    "workload",
    "site",
    "trials",
    "detected",
    "crashed",
    "SDC",
    "masked",
    "coverage",
    "cov 95% CI",
];

/// One coverage row: counts, the point rate, and its 95% Wilson interval
/// over unmasked faults. The single source of the cell formatting — the
/// one-shot experiment table, `campaignd --one-shot`, and `campaign-merge`
/// all render through here, which is what makes "merged table ≡ one-shot
/// table" a byte-level statement.
pub fn coverage_cells(label: &str, site: &str, s: &SiteResult) -> Vec<String> {
    let unmasked = s.trials - s.masked;
    vec![
        label.to_string(),
        site.to_string(),
        s.trials.to_string(),
        s.detected.to_string(),
        s.crashed.to_string(),
        s.sdc.to_string(),
        s.masked.to_string(),
        format!("{:.0}%", s.coverage() * 100.0),
        ci95(s.detected_family(), unmasked),
    ]
}

/// Renders a campaign's per-site coverage as the standard table.
pub fn coverage_table(label: &str, result: &CampaignResult) -> Table {
    coverage_table_titled("Fault-injection coverage (per unmasked fault)", label, result)
}

fn coverage_table_titled(title: &str, label: &str, result: &CampaignResult) -> Table {
    let mut t = Table::new(title, &COVERAGE_HEADER);
    for (site, s) in &result.per_site {
        t.row(&coverage_cells(label, site.name(), s));
    }
    t
}

/// The column headers of a recovery (coverage-by-fault-class) table —
/// shared by the `recovery` experiment, `campaignd`, and `campaign-merge`
/// so every producer agrees byte-for-byte.
pub const RECOVERY_HEADER: [&str; 12] = [
    "workload",
    "kind",
    "site",
    "trials",
    "recovered",
    "degraded",
    "unrecov",
    "crashed",
    "SDC",
    "masked",
    "coverage",
    "mean retries",
];

/// One recovery row: per-class recovery dispositions and the mean retry
/// count over recovered trials. The single source of the cell formatting,
/// for the same byte-identity reason as [`coverage_cells`].
pub fn recovery_cells(label: &str, kind: &str, site: &str, s: &SiteResult) -> Vec<String> {
    let mean_retries = if s.recovered == 0 {
        "-".to_string()
    } else {
        format!("{:.2}", s.retries_sum as f64 / s.recovered as f64)
    };
    vec![
        label.to_string(),
        kind.to_string(),
        site.to_string(),
        s.trials.to_string(),
        s.recovered.to_string(),
        s.degraded.to_string(),
        s.unrecoverable.to_string(),
        s.crashed.to_string(),
        s.sdc.to_string(),
        s.masked.to_string(),
        format!("{:.0}%", s.coverage() * 100.0),
        mean_retries,
    ]
}

/// Renders a recovery campaign's per-site dispositions as the standard
/// coverage-by-fault-class table.
pub fn recovery_table(label: &str, kind: &str, result: &CampaignResult) -> Table {
    recovery_table_titled(
        "Fault recovery by class (detect → rollback → re-execute)",
        label,
        kind,
        result,
    )
}

fn recovery_table_titled(title: &str, label: &str, kind: &str, result: &CampaignResult) -> Table {
    let mut t = Table::new(title, &RECOVERY_HEADER);
    for (site, s) in &result.per_site {
        t.row(&recovery_cells(label, kind, site.name(), s));
    }
    t
}

/// The column headers of the per-shard completeness table a partial merge
/// prints alongside its coverage.
pub const COMPLETENESS_HEADER: [&str; 5] = ["shard", "done", "total", "pct", "state"];

/// Renders a partial merge's per-shard accounting. The `state` column
/// makes the merge's honesty explicit: a `degraded`/`missing`/`corrupt`
/// shard is *named*, not papered over.
pub fn completeness_table(partial: &PartialMerge) -> Table {
    let mut t = Table::new("Shard completeness", &COMPLETENESS_HEADER);
    for c in &partial.completeness {
        let pct = if c.total == 0 {
            "100%".to_string()
        } else {
            format!("{:.0}%", c.done as f64 / c.total as f64 * 100.0)
        };
        t.row(&[
            c.shard.to_string(),
            c.done.to_string(),
            c.total.to_string(),
            pct,
            c.state.clone(),
        ]);
    }
    t
}

/// The `kind` cell label a manifest's recovery table uses: the Debug form
/// `Intermittent { period: 40, count: 3 }` collapses to its lowercased
/// head, matching what the one-shot path prints via `FaultKind::name()`.
/// Shared by `campaign-merge` and the partial merge so both render the
/// same bytes.
pub fn manifest_kind_label(manifest: &Manifest) -> String {
    manifest.fault_kind.split_whitespace().next().unwrap_or("transient").to_ascii_lowercase()
}

/// Whether a manifest records a recovery campaign (vs detection-only).
pub fn manifest_is_recovery(manifest: &Manifest) -> bool {
    manifest.recovery != "None" && !manifest.recovery.is_empty()
}

/// Renders a merged result with the table family the manifest calls for —
/// the single render path of `campaignd --supervise`, `campaign-merge`,
/// and the chaos harness, so "merged table ≡ one-shot table" stays a
/// byte-level statement.
pub fn merged_table(manifest: &Manifest, result: &CampaignResult) -> Table {
    if manifest_is_recovery(manifest) {
        recovery_table(&manifest.workload, &manifest_kind_label(manifest), result)
    } else {
        coverage_table(&manifest.workload, result)
    }
}

/// Renders a partial merge's coverage (or recovery) table. Complete
/// campaigns render with the standard titles — byte-identical to
/// [`merge_campaign`]'s output — while genuinely partial ones carry a
/// `PARTIAL` marker in the title so a truncated table can never pass as a
/// full campaign downstream.
pub fn partial_result_table(partial: &PartialMerge) -> Table {
    if partial.is_complete() {
        return merged_table(&partial.manifest, &partial.result);
    }
    let label = &partial.manifest.workload;
    if manifest_is_recovery(&partial.manifest) {
        recovery_table_titled(
            "PARTIAL fault recovery by class (incomplete campaign)",
            label,
            &manifest_kind_label(&partial.manifest),
            &partial.result,
        )
    } else {
        coverage_table_titled(
            "PARTIAL fault-injection coverage (incomplete campaign)",
            label,
            &partial.result,
        )
    }
}
