//! The on-disk campaign store: manifest, per-shard checkpoints, status
//! heartbeats, and lock files.
//!
//! Layout of a campaign directory:
//!
//! ```text
//! <dir>/
//!   run_manifest.json        config fingerprint + shard spec (one per run)
//!   shard-0-of-2.jsonl       shard 0's checkpoint: header + one line/trial
//!   shard-1-of-2.jsonl       shard 1's checkpoint
//!   status-shard-0.json      shard 0's heartbeat (progress, state)
//!   shard-0.lock             present while shard 0 runs (or died running)
//! ```
//!
//! Every file is written atomically (full rewrite to a pid-tagged `.tmp`
//! sibling, then rename), so a `SIGKILL` at any instant leaves either the
//! previous complete checkpoint or the new complete checkpoint — never a
//! torn file. A killed shard loses at most `checkpoint_every − 1` trials
//! of work; because trials are pure in `(seed, site, trial)`, re-running
//! them on resume reproduces the identical results.
//!
//! # The filesystem seam ([`StoreFs`])
//!
//! Every filesystem operation the store performs — atomic writes,
//! checkpoint reads, lock acquire/release, status heartbeats, the tmp
//! sweep — goes through the [`StoreFs`] trait. Production uses [`RealFs`];
//! the chaos harness ([`crate::chaosfs::ChaosFs`]) substitutes a scripted
//! fault-injecting implementation, which is how the campaign service's own
//! robustness claims (determinism invariant 12) are tested
//! deterministically: torn writes, failed renames, EIO/ENOSPC, lost lock
//! removals, and stale heartbeats all replay bit-identically from a
//! `(seed, script)` pair.
//!
//! The workspace is deliberately dependency-free (no serde); the JSON here
//! is hand-rendered and hand-scanned, like `BENCH_speed.json`.

use crate::campaign::{CampaignConfig, FaultSite, Outcome};
use crate::shard::ShardSpec;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Schema tag of `run_manifest.json`. Bumped to v2 when campaigns grew a
/// fault kind, a recovery policy, and per-trial recovery fields — v1
/// stores are refused with [`StoreError::SchemaVersion`] rather than
/// silently misread (a v1 record has no retry/recovery columns, so a v2
/// merge over it would fabricate zeros).
pub const MANIFEST_SCHEMA: &str = "paradet-campaign-manifest/v2";
/// Schema tag of the checkpoint header line (see [`MANIFEST_SCHEMA`] for
/// the v2 bump; v2 also adds a per-line FNV-1a checksum).
pub const CHECKPOINT_SCHEMA: &str = "paradet-campaign-ckpt/v2";
/// Schema tag of the status heartbeat files.
pub const STATUS_SCHEMA: &str = "paradet-campaign-status/v2";

/// The filesystem operations the campaign store performs, as an
/// object-safe seam.
///
/// [`RealFs`] forwards to `std::fs`; `ChaosFs` (in
/// [`chaosfs`](crate::chaosfs)) wraps it with a deterministic, scripted
/// fault plan. Everything the store and service layers touch on disk goes
/// through this trait, so a chaos run covers the *whole* persistence
/// surface, not a lucky subset.
pub trait StoreFs: fmt::Debug + Send + Sync {
    /// Reads a whole file as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Writes (creating or truncating) a whole file.
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()>;
    /// Renames `from` onto `to` (the commit point of an atomic write).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists the entries of a directory (file paths, any order).
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

/// A shared, dynamically-dispatched [`StoreFs`] — the form the service
/// layer threads around (the lock keeps a clone so its `Drop` can release
/// through the same filesystem it acquired through).
pub type DynFs = Arc<dyn StoreFs>;

/// The production [`StoreFs`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl StoreFs for RealFs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        std::fs::write(path, contents)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::read_dir(path)?.map(|e| e.map(|e| e.path())).collect()
    }
}

/// A fresh shared [`RealFs`].
pub fn real_fs() -> DynFs {
    Arc::new(RealFs)
}

/// Errors from the campaign store and the shard/merge service.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The manifest on disk describes a different campaign than the current
    /// invocation — resuming or merging would silently mix incompatible
    /// trial grids, so both refuse.
    FingerprintMismatch {
        /// Fingerprint the current invocation computes.
        expected: String,
        /// Fingerprint recorded on disk.
        found: String,
        /// Which file disagreed and the human-readable config it records.
        detail: String,
    },
    /// A store file exists but cannot be understood.
    Corrupt(String),
    /// A store file was written by a different (typically older) schema
    /// version. Distinct from [`Corrupt`](StoreError::Corrupt): the file
    /// is intact, it just speaks another dialect — re-run the campaign
    /// with the current binaries instead of "repairing" anything.
    SchemaVersion {
        /// Schema tag recorded in the file.
        found: String,
        /// Schema tag this binary writes and reads.
        expected: String,
    },
    /// A lock file says the shard is running in a *live* process, or a
    /// completed shard's checkpoint exists and `--resume` was not given.
    Locked(String),
    /// A merge found a shard with missing trials.
    Incomplete(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "campaign store I/O error: {e}"),
            StoreError::FingerprintMismatch { expected, found, detail } => write!(
                f,
                "config fingerprint mismatch: this invocation is {expected} but {detail} \
                 records {found} — the directory belongs to a different campaign \
                 (seed/workload/fault model/trials differ); use a fresh --dir or rerun \
                 with the original configuration"
            ),
            StoreError::Corrupt(m) => write!(f, "corrupt campaign store: {m}"),
            StoreError::SchemaVersion { found, expected } => write!(
                f,
                "campaign store schema `{found}` is not the supported `{expected}` — \
                 this directory was written by an incompatible paradet version; \
                 re-run the campaign into a fresh --dir"
            ),
            StoreError::Locked(m) => write!(f, "{m}"),
            StoreError::Incomplete(m) => write!(f, "incomplete campaign: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// A campaign's config fingerprint: a 64-bit FNV-1a digest over the
/// canonical rendering of everything that determines the trial grid and
/// each trial's result — seed, workload, per-trial budget, trials per
/// site, the site list (order included: it fixes grid positions), and the
/// full `SystemConfig` (its `Debug` form, which covers the fault-model
/// ablations such as `lfu_enabled`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Renders as fixed-width hex (the manifest/checkpoint form).
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Computes the fingerprint of a campaign configuration.
///
/// Every field that can change a trial's fault or outcome is in the
/// canonical string — including the temporal fault kind and the recovery
/// policy, which change outcomes without changing the grid. Any new
/// per-trial knob added to [`CampaignConfig`] must be appended here *and*
/// to [`TrialRecord`] if it surfaces per trial, or resume/merge would mix
/// incompatible campaigns.
pub fn fingerprint(cfg: &CampaignConfig) -> Fingerprint {
    let site_names: Vec<&str> = cfg.sites.iter().map(|s| s.name()).collect();
    let canonical = format!(
        "seed={}|workload={}|instrs={}|trials_per_site={}|sites={}|system={:?}|\
         fault_kind={:?}|recovery={:?}",
        cfg.seed,
        cfg.workload.name(),
        cfg.instrs,
        cfg.trials_per_site,
        site_names.join(","),
        cfg.system,
        cfg.fault_kind,
        cfg.recovery,
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    Fingerprint(h)
}

/// `run_manifest.json`: the campaign identity a directory serves. Written
/// by the first shard to start; every later shard, resume, and merge
/// validates against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Config fingerprint (hex form of [`fingerprint`]).
    pub fingerprint: String,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Workload name.
    pub workload: String,
    /// Dynamic instructions per trial.
    pub instrs: u64,
    /// Trials per site class.
    pub trials_per_site: u64,
    /// Site-class names, in grid order.
    pub sites: Vec<String>,
    /// Number of shards the grid is partitioned into.
    pub shards: u32,
    /// Human-readable `SystemConfig` (diagnostic only; the fingerprint is
    /// what gates resume/merge).
    pub system: String,
    /// Human-readable temporal fault kind (diagnostic; fingerprinted).
    pub fault_kind: String,
    /// Human-readable recovery policy, `"None"` for detection-only
    /// campaigns (diagnostic; fingerprinted).
    pub recovery: String,
}

impl Manifest {
    /// Builds the manifest a fresh campaign run writes.
    pub fn from_config(cfg: &CampaignConfig, shards: u32) -> Manifest {
        Manifest {
            fingerprint: fingerprint(cfg).hex(),
            seed: cfg.seed,
            workload: cfg.workload.name().to_string(),
            instrs: cfg.instrs,
            trials_per_site: cfg.trials_per_site,
            sites: cfg.sites.iter().map(|s| s.name().to_string()).collect(),
            shards,
            system: format!("{:?}", cfg.system),
            fault_kind: format!("{:?}", cfg.fault_kind),
            recovery: format!("{:?}", cfg.recovery),
        }
    }

    /// The site list parsed back into [`FaultSite`]s.
    pub fn site_list(&self) -> Result<Vec<FaultSite>, StoreError> {
        self.sites
            .iter()
            .map(|n| {
                FaultSite::from_name(n)
                    .ok_or_else(|| StoreError::Corrupt(format!("unknown fault site `{n}`")))
            })
            .collect()
    }

    fn render(&self) -> String {
        let sites =
            self.sites.iter().map(|s| format!("\"{}\"", json_escape(s))).collect::<Vec<_>>();
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"fingerprint\": \"{}\",\n  \"seed\": {},\n  \
             \"workload\": \"{}\",\n  \"instrs\": {},\n  \"trials_per_site\": {},\n  \
             \"sites\": [{}],\n  \"shards\": {},\n  \"system\": \"{}\",\n  \
             \"fault_kind\": \"{}\",\n  \"recovery\": \"{}\"\n}}\n",
            MANIFEST_SCHEMA,
            json_escape(&self.fingerprint),
            self.seed,
            json_escape(&self.workload),
            self.instrs,
            self.trials_per_site,
            sites.join(", "),
            self.shards,
            json_escape(&self.system),
            json_escape(&self.fault_kind),
            json_escape(&self.recovery),
        )
    }

    fn parse(text: &str) -> Result<Manifest, StoreError> {
        let schema = str_field(text, "schema")
            .ok_or_else(|| StoreError::Corrupt("manifest has no schema tag".into()))?;
        if schema != MANIFEST_SCHEMA {
            return Err(StoreError::SchemaVersion {
                found: schema,
                expected: MANIFEST_SCHEMA.to_string(),
            });
        }
        Ok(Manifest {
            fingerprint: str_field(text, "fingerprint")
                .ok_or_else(|| StoreError::Corrupt("manifest missing fingerprint".into()))?,
            seed: u64_field(text, "seed")
                .ok_or_else(|| StoreError::Corrupt("manifest missing seed".into()))?,
            workload: str_field(text, "workload")
                .ok_or_else(|| StoreError::Corrupt("manifest missing workload".into()))?,
            instrs: u64_field(text, "instrs")
                .ok_or_else(|| StoreError::Corrupt("manifest missing instrs".into()))?,
            trials_per_site: u64_field(text, "trials_per_site")
                .ok_or_else(|| StoreError::Corrupt("manifest missing trials_per_site".into()))?,
            sites: str_array(text, "sites"),
            shards: u64_field(text, "shards")
                .ok_or_else(|| StoreError::Corrupt("manifest missing shards".into()))?
                as u32,
            system: str_field(text, "system").unwrap_or_default(),
            fault_kind: str_field(text, "fault_kind").unwrap_or_default(),
            recovery: str_field(text, "recovery").unwrap_or_default(),
        })
    }
}

/// Path of the manifest inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("run_manifest.json")
}

/// Reads and parses `run_manifest.json` from `dir` through `fs`.
pub fn read_manifest_on(fs: &dyn StoreFs, dir: &Path) -> Result<Manifest, StoreError> {
    let path = manifest_path(dir);
    let text = fs.read_to_string(&path).map_err(|e| {
        if e.kind() == io::ErrorKind::NotFound {
            StoreError::Corrupt(format!("no run_manifest.json in {}", dir.display()))
        } else {
            StoreError::Io(e)
        }
    })?;
    Manifest::parse(&text)
}

/// [`read_manifest_on`] over the real filesystem.
pub fn read_manifest(dir: &Path) -> Result<Manifest, StoreError> {
    read_manifest_on(&RealFs, dir)
}

/// Writes the manifest if absent, or validates the existing one against
/// this invocation (fingerprint and shard count must match). Returns the
/// manifest in force.
pub fn ensure_manifest_on(
    fs: &dyn StoreFs,
    dir: &Path,
    cfg: &CampaignConfig,
    shards: u32,
) -> Result<Manifest, StoreError> {
    fs.create_dir_all(dir)?;
    let mine = Manifest::from_config(cfg, shards);
    let path = manifest_path(dir);
    if !fs.exists(&path) {
        atomic_write_on(fs, &path, &mine.render())?;
        return Ok(mine);
    }
    let found = read_manifest_on(fs, dir)?;
    if found.fingerprint != mine.fingerprint {
        return Err(StoreError::FingerprintMismatch {
            expected: mine.fingerprint,
            found: found.fingerprint,
            detail: format!(
                "{} (workload={}, seed={}, instrs={}, trials_per_site={})",
                path.display(),
                found.workload,
                found.seed,
                found.instrs,
                found.trials_per_site
            ),
        });
    }
    if found.shards != shards {
        return Err(StoreError::Corrupt(format!(
            "{} partitions the grid into {} shards, this invocation says {}",
            path.display(),
            found.shards,
            shards
        )));
    }
    Ok(found)
}

/// [`ensure_manifest_on`] over the real filesystem.
pub fn ensure_manifest(
    dir: &Path,
    cfg: &CampaignConfig,
    shards: u32,
) -> Result<Manifest, StoreError> {
    ensure_manifest_on(&RealFs, dir, cfg, shards)
}

/// One checkpointed trial: the grid point and its classification. The
/// concrete fault is *not* stored — it is a pure function of
/// `(seed, site, trial)` and is reconstructed on merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialRecord {
    /// Site class of the point.
    pub site: FaultSite,
    /// Trial index within the site.
    pub trial: u64,
    /// Classification.
    pub outcome: Outcome,
    /// Detection latency in femtoseconds, when detected.
    pub latency_fs: Option<u64>,
    /// Rollbacks performed, for `recovered` outcomes (the tag drops the
    /// count; this field and the tag reconstruct `Outcome::Recovered`).
    pub retries: Option<u32>,
    /// Modeled recovery cost in femtoseconds, when a rollback happened.
    pub recovery_fs: Option<u64>,
}

/// Path of shard `shard`'s checkpoint inside `dir`.
pub fn checkpoint_path(dir: &Path, shard: ShardSpec) -> PathBuf {
    dir.join(format!("shard-{}-of-{}.jsonl", shard.index(), shard.count()))
}

/// FNV-1a-64 over `prefix`, in the fixed-width hex the per-line `crc`
/// field carries. The checksum covers everything on the line before
/// `", \"crc\""`, so the reader needs no JSON canonicalization to verify.
fn line_crc(prefix: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in prefix.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Appends `line` to `out`, sealed with its [`line_crc`] as the final
/// `crc` field. `line` must be an open JSON object (no closing brace).
fn push_sealed(out: &mut String, line: &str) {
    out.push_str(line);
    out.push_str(", \"crc\": \"");
    out.push_str(&line_crc(line));
    out.push_str("\"}\n");
}

/// Verifies a sealed line's `crc` field; returns the checksummed prefix
/// (the open JSON object) when intact.
fn check_sealed(line: &str) -> Option<&str> {
    let pos = line.rfind(", \"crc\": \"")?;
    let claim = line[pos..].strip_prefix(", \"crc\": \"")?.strip_suffix("\"}")?;
    let prefix = &line[..pos];
    (claim == line_crc(prefix)).then_some(prefix)
}

/// Atomically (re)writes shard `shard`'s checkpoint: a header line carrying
/// the schema + fingerprint, then one line per completed trial in slice
/// order. Every line — header included — is sealed with a FNV-1a checksum
/// so bit rot from non-atomic storage (NFS, torn replication) is caught on
/// read instead of corrupting a resumed campaign.
pub fn write_checkpoint_on(
    fs: &dyn StoreFs,
    dir: &Path,
    shard: ShardSpec,
    fp: &str,
    records: &[TrialRecord],
) -> Result<(), StoreError> {
    let mut out = String::with_capacity(64 + records.len() * 96);
    push_sealed(
        &mut out,
        &format!(
            "{{\"schema\": \"{}\", \"fingerprint\": \"{}\", \"shard\": \"{}\"",
            CHECKPOINT_SCHEMA,
            json_escape(fp),
            shard
        ),
    );
    for r in records {
        let mut line = format!(
            "{{\"site\": \"{}\", \"trial\": {}, \"outcome\": \"{}\"",
            r.site.name(),
            r.trial,
            r.outcome.tag()
        );
        if let Some(fs) = r.latency_fs {
            line.push_str(&format!(", \"latency_fs\": {fs}"));
        }
        if let Some(n) = r.retries {
            line.push_str(&format!(", \"retries\": {n}"));
        }
        if let Some(fs) = r.recovery_fs {
            line.push_str(&format!(", \"recovery_fs\": {fs}"));
        }
        push_sealed(&mut out, &line);
    }
    atomic_write_on(fs, &checkpoint_path(dir, shard), &out)
}

/// [`write_checkpoint_on`] over the real filesystem.
pub fn write_checkpoint(
    dir: &Path,
    shard: ShardSpec,
    fp: &str,
    records: &[TrialRecord],
) -> Result<(), StoreError> {
    write_checkpoint_on(&RealFs, dir, shard, fp, records)
}

/// Reads shard `shard`'s checkpoint, if present, validating its header
/// fingerprint against `expect_fp` and every line's checksum.
///
/// A checksum failure on the **final** line is treated as a clean
/// truncation (a partial append from foreign storage): the intact prefix
/// is returned and resume recomputes the suffix — trials are pure in
/// `(seed, site, trial)`, so the repaired campaign is bit-identical. A
/// bad line anywhere *else* (or an intact line that doesn't parse) is
/// real corruption and is refused.
pub fn read_checkpoint_on(
    fs: &dyn StoreFs,
    dir: &Path,
    shard: ShardSpec,
    expect_fp: &str,
) -> Result<Option<Vec<TrialRecord>>, StoreError> {
    let path = checkpoint_path(dir, shard);
    let text = match fs.read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let all: Vec<&str> = text.lines().collect();
    let header =
        *all.first().ok_or_else(|| StoreError::Corrupt(format!("{} is empty", path.display())))?;
    let schema = str_field(header, "schema")
        .ok_or_else(|| StoreError::Corrupt(format!("{} header has no schema", path.display())))?;
    if schema != CHECKPOINT_SCHEMA {
        return Err(StoreError::SchemaVersion {
            found: schema,
            expected: CHECKPOINT_SCHEMA.to_string(),
        });
    }
    if check_sealed(header).is_none() {
        return Err(StoreError::Corrupt(format!("{} header fails its checksum", path.display())));
    }
    let fp = str_field(header, "fingerprint").unwrap_or_default();
    if fp != expect_fp {
        return Err(StoreError::FingerprintMismatch {
            expected: expect_fp.to_string(),
            found: fp,
            detail: format!("checkpoint {}", path.display()),
        });
    }
    let mut records = Vec::new();
    for (i, &line) in all.iter().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        if check_sealed(line).is_none() {
            if i == all.len() - 1 {
                // Torn tail: the prefix is intact, resume recomputes the
                // rest.
                break;
            }
            return Err(StoreError::Corrupt(format!(
                "{} line {}: checksum failure mid-file",
                path.display(),
                i + 1
            )));
        }
        let site_name = str_field(line, "site").ok_or_else(|| {
            StoreError::Corrupt(format!("{} line {}: no site", path.display(), i + 1))
        })?;
        let site = FaultSite::from_name(&site_name).ok_or_else(|| {
            StoreError::Corrupt(format!(
                "{} line {}: unknown site `{site_name}`",
                path.display(),
                i + 1
            ))
        })?;
        let trial = u64_field(line, "trial").ok_or_else(|| {
            StoreError::Corrupt(format!("{} line {}: no trial", path.display(), i + 1))
        })?;
        let tag = str_field(line, "outcome").ok_or_else(|| {
            StoreError::Corrupt(format!("{} line {}: no outcome", path.display(), i + 1))
        })?;
        let mut outcome = Outcome::from_tag(&tag).ok_or_else(|| {
            StoreError::Corrupt(format!(
                "{} line {}: unknown outcome `{tag}`",
                path.display(),
                i + 1
            ))
        })?;
        let retries = u64_field(line, "retries").map(|n| n as u32);
        if let Outcome::Recovered { .. } = outcome {
            // The tag drops the retry count; the record field restores it.
            outcome = Outcome::Recovered { retries: retries.unwrap_or(0) };
        }
        records.push(TrialRecord {
            site,
            trial,
            outcome,
            latency_fs: u64_field(line, "latency_fs"),
            retries,
            recovery_fs: u64_field(line, "recovery_fs"),
        });
    }
    Ok(Some(records))
}

/// [`read_checkpoint_on`] over the real filesystem.
pub fn read_checkpoint(
    dir: &Path,
    shard: ShardSpec,
    expect_fp: &str,
) -> Result<Option<Vec<TrialRecord>>, StoreError> {
    read_checkpoint_on(&RealFs, dir, shard, expect_fp)
}

/// Path of shard `shard`'s status heartbeat inside `dir`. The supervisor
/// watches this file's mtime as the liveness signal.
pub fn status_path(dir: &Path, shard: ShardSpec) -> PathBuf {
    dir.join(format!("status-shard-{}.json", shard.index()))
}

/// Atomically writes shard `shard`'s status heartbeat.
pub fn write_status_on(
    fs: &dyn StoreFs,
    dir: &Path,
    shard: ShardSpec,
    state: &str,
    done: u64,
    total: u64,
) -> Result<(), StoreError> {
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let body = format!(
        "{{\n  \"schema\": \"{}\",\n  \"shard\": \"{}\",\n  \"state\": \"{}\",\n  \
         \"done\": {},\n  \"total\": {},\n  \"updated_unix\": {}\n}}\n",
        STATUS_SCHEMA,
        shard,
        json_escape(state),
        done,
        total,
        unix
    );
    atomic_write_on(fs, &status_path(dir, shard), &body)
}

/// [`write_status_on`] over the real filesystem.
pub fn write_status(
    dir: &Path,
    shard: ShardSpec,
    state: &str,
    done: u64,
    total: u64,
) -> Result<(), StoreError> {
    write_status_on(&RealFs, dir, shard, state, done, total)
}

/// A parsed status heartbeat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// Free-form state tag: `running`, `done`, or `degraded` (written by
    /// the supervisor when it quarantines a shard).
    pub state: String,
    /// Trials completed at the time of the heartbeat.
    pub done: u64,
    /// Trials in the shard's slice.
    pub total: u64,
    /// Unix seconds of the heartbeat (coarse; the supervisor uses file
    /// mtime instead for sub-second staleness detection).
    pub updated_unix: u64,
}

/// Reads shard `shard`'s status heartbeat, if present. A malformed status
/// file reads as `None` rather than an error — heartbeats are advisory
/// (progress display, supervisor bookkeeping), never load-bearing for the
/// merge.
pub fn read_status_on(fs: &dyn StoreFs, dir: &Path, shard: ShardSpec) -> Option<ShardStatus> {
    let text = fs.read_to_string(&status_path(dir, shard)).ok()?;
    Some(ShardStatus {
        state: str_field(&text, "state")?,
        done: u64_field(&text, "done")?,
        total: u64_field(&text, "total")?,
        updated_unix: u64_field(&text, "updated_unix").unwrap_or(0),
    })
}

/// [`read_status_on`] over the real filesystem.
pub fn read_status(dir: &Path, shard: ShardSpec) -> Option<ShardStatus> {
    read_status_on(&RealFs, dir, shard)
}

/// The boot token of a live process: a stable identifier of the process
/// *instance* (not just the pid, which the kernel recycles). On Linux this
/// is the `starttime` field of `/proc/<pid>/stat` — two different
/// processes can share a pid across time, but never a `(pid, starttime)`
/// pair. Returns `None` where unreadable (non-Linux, or the process is
/// gone).
pub fn boot_token_of(pid: u32) -> Option<String> {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    // comm (field 2) is an arbitrary string in parens; everything after
    // the *last* ')' is whitespace-separated fields 3.. — starttime is
    // field 22 overall, index 19 of the remainder.
    let rest = &stat[stat.rfind(')')? + 1..];
    rest.split_whitespace().nth(19).map(str::to_string)
}

/// Whether process `pid` is live at all (boot token aside). `true` is the
/// conservative answer where `/proc` is unavailable.
fn process_is_live(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    if !Path::new("/proc").exists() {
        return true; // No way to tell; never steal from a maybe-live owner.
    }
    Path::new(&format!("/proc/{pid}")).exists()
}

/// Whether the shard-lock owner `(pid, token)` is a genuinely live
/// process *other than us*.
///
/// * Our own pid → **dead**: a live concurrent process cannot share our
///   pid, so the lock is a leftover of an earlier incarnation in this
///   process (the in-process chaos harness exercises exactly this).
/// * pid gone → dead. pid present but boot token differs → the pid was
///   recycled onto an unrelated process → the *owner* is dead.
/// * Token unreadable/unrecorded → conservatively live (never steal a
///   lock we cannot prove stale).
fn lock_owner_is_live(pid: u32, token: &str) -> bool {
    if pid == std::process::id() {
        return false;
    }
    if !process_is_live(pid) {
        return false;
    }
    if token == "-" {
        return true; // Recorded without a token: cannot prove reuse.
    }
    match boot_token_of(pid) {
        Some(cur) => cur == token,
        // /proc/<pid> exists but stat is unreadable: conservatively live.
        None => true,
    }
}

/// A held per-shard lock file. Dropped on clean completion (the file is
/// removed); a `SIGKILL` leaves the file behind.
///
/// The lock records `pid` **and** the owner's boot token (process start
/// time), so a stale lock is distinguished from a live one by *owner
/// liveness*, not by flags: a lock whose owner is dead — the pid is gone,
/// or was recycled onto a different process instance — is taken over
/// automatically, while a genuinely live owner always refuses, `--resume`
/// or not (two live processes on one shard would race the checkpoint).
#[derive(Debug)]
pub struct ShardLock {
    fs: DynFs,
    path: PathBuf,
}

/// Path of shard `shard`'s lock file inside `dir`.
pub fn lock_path(dir: &Path, shard: ShardSpec) -> PathBuf {
    dir.join(format!("shard-{}.lock", shard.index()))
}

impl ShardLock {
    /// Acquires the lock for `shard` in `dir` through `fs`. Returns the
    /// held lock and whether a dead owner's stale lock was taken over —
    /// the service treats that as an implicit resume (the dead owner left
    /// a checkpoint mid-slice).
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when the recorded owner is a genuinely live
    /// process (see [`boot_token_of`] for how pid reuse is detected).
    pub fn acquire_on(
        fs: &DynFs,
        dir: &Path,
        shard: ShardSpec,
    ) -> Result<(ShardLock, bool), StoreError> {
        let path = lock_path(dir, shard);
        let mut took_over_dead = false;
        if fs.exists(&path) {
            let owner = fs.read_to_string(&path).unwrap_or_default();
            let mut it = owner.split_whitespace();
            let pid: Option<u32> = it.next().and_then(|p| p.parse().ok());
            let token = it.next().unwrap_or("-");
            match pid {
                Some(pid) if lock_owner_is_live(pid, token) => {
                    return Err(StoreError::Locked(format!(
                        "{} is held by live process {pid}: shard {} is already running; \
                         wait for it (or kill it) instead of racing its checkpoint",
                        path.display(),
                        shard
                    )));
                }
                // Dead owner (gone pid, recycled pid, our own earlier
                // incarnation) or unparseable legacy lock: take over.
                _ => took_over_dead = true,
            }
        }
        let token = boot_token_of(std::process::id()).unwrap_or_else(|| "-".to_string());
        fs.write(&path, format!("{} {}\n", std::process::id(), token).as_bytes())?;
        Ok((ShardLock { fs: Arc::clone(fs), path }, took_over_dead))
    }

    /// [`ShardLock::acquire_on`] over the real filesystem.
    pub fn acquire(dir: &Path, shard: ShardSpec) -> Result<(ShardLock, bool), StoreError> {
        ShardLock::acquire_on(&real_fs(), dir, shard)
    }
}

impl Drop for ShardLock {
    fn drop(&mut self) {
        let _ = self.fs.remove_file(&self.path);
    }
}

/// The pid-tagged `.tmp` sibling [`atomic_write_on`] stages into:
/// `<name>.<pid>.tmp`. Tagging with the writer's pid lets the sweep
/// distinguish a *stranded* tmp (owner dead — a kill landed between write
/// and rename) from one a live sibling shard is about to rename.
fn tmp_sibling(path: &Path) -> PathBuf {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("file");
    path.with_file_name(format!("{name}.{}.tmp", std::process::id()))
}

/// Writes `contents` to `path` via a pid-tagged `.tmp` sibling + rename,
/// so readers (and a kill at any instant) see either the old file or the
/// new one.
pub fn atomic_write_on(fs: &dyn StoreFs, path: &Path, contents: &str) -> Result<(), StoreError> {
    let tmp = tmp_sibling(path);
    fs.write(&tmp, contents.as_bytes())?;
    fs.rename(&tmp, path)?;
    Ok(())
}

/// Sweeps stranded `*.tmp` staging files out of `dir`: an `atomic_write`
/// killed between write and rename leaks its tmp forever, and nothing
/// else ever removes it. A tmp is *stranded* when its embedded owner pid
/// is dead (or the name carries no parseable pid); a live owner's tmp —
/// a sibling shard mid-write — is left alone. Returns the removed paths.
///
/// Called on store open/resume (under the shard lock). Best-effort:
/// individual remove failures are skipped, never fatal — a surviving tmp
/// costs disk, not correctness.
pub fn sweep_stale_tmp_on(fs: &dyn StoreFs, dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs.list_dir(dir) else {
        return Vec::new();
    };
    let mut removed = Vec::new();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name.strip_suffix(".tmp") else {
            continue;
        };
        // `<original>.<pid>.tmp` → owner pid is the last dot-segment.
        let owner: Option<u32> = stem.rsplit('.').next().and_then(|p| p.parse().ok());
        let stranded = match owner {
            Some(pid) => pid == std::process::id() || !process_is_live(pid),
            None => true, // Legacy / foreign tmp: nobody will rename it.
        };
        if stranded && fs.remove_file(&path).is_ok() {
            removed.push(path);
        }
    }
    removed
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Unescapes the subset [`json_escape`] produces.
fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Scans `"key": "value"` out of our own JSON (not a general parser — the
/// format is ours, as with `BENCH_speed.json`).
fn str_field(json: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let at = json.find(&tag)? + tag.len();
    let rest = &json[at..];
    // Find the closing quote, skipping escaped ones.
    let mut end = None;
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                end = Some(i);
                break;
            }
            _ => i += 1,
        }
    }
    Some(json_unescape(&rest[..end?]))
}

/// Scans `"key": <u64>` out of our own JSON.
fn u64_field(json: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let at = json.find(&tag)? + tag.len();
    json[at..].split([',', '}', '\n']).next()?.trim().parse().ok()
}

/// Scans `"key": ["a", "b", ...]` out of our own JSON.
fn str_array(json: &str, key: &str) -> Vec<String> {
    let tag = format!("\"{key}\": [");
    let Some(at) = json.find(&tag).map(|i| i + tag.len()) else {
        return Vec::new();
    };
    let Some(end) = json[at..].find(']') else {
        return Vec::new();
    };
    json[at..at + end]
        .split(',')
        .filter_map(|item| {
            let item = item.trim();
            item.strip_prefix('"').and_then(|s| s.strip_suffix('"')).map(json_unescape)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradet_workloads::Workload;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("paradet-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trips() {
        let cfg = CampaignConfig::default();
        let m = Manifest::from_config(&cfg, 3);
        let parsed = Manifest::parse(&m.render()).unwrap();
        assert_eq!(m, parsed);
        assert_eq!(parsed.site_list().unwrap(), cfg.sites);
    }

    #[test]
    fn fingerprint_separates_configs() {
        let base = CampaignConfig::default();
        let f0 = fingerprint(&base);
        assert_eq!(f0, fingerprint(&base.clone()));
        let seeds = CampaignConfig { seed: 43, ..base.clone() };
        assert_ne!(f0, fingerprint(&seeds));
        let workload = CampaignConfig { workload: Workload::Stream, ..base.clone() };
        assert_ne!(f0, fingerprint(&workload));
        let trials = CampaignConfig { trials_per_site: 51, ..base.clone() };
        assert_ne!(f0, fingerprint(&trials));
        let system = CampaignConfig {
            system: paradet_core::SystemConfig {
                lfu_enabled: false,
                ..paradet_core::SystemConfig::paper_default()
            },
            ..base.clone()
        };
        assert_ne!(f0, fingerprint(&system), "fault-model ablations must refingerprint");
        let sites = CampaignConfig { sites: vec![FaultSite::Pc], ..base };
        assert_ne!(f0, fingerprint(&sites));
    }

    #[test]
    fn ensure_manifest_rejects_mismatch() {
        let dir = tmpdir("manifest");
        let cfg = CampaignConfig::default();
        ensure_manifest(&dir, &cfg, 2).unwrap();
        // Same config, same shards: fine (the resume path).
        ensure_manifest(&dir, &cfg, 2).unwrap();
        // Different seed: refused.
        let other = CampaignConfig { seed: 7, ..cfg.clone() };
        match ensure_manifest(&dir, &other, 2) {
            Err(StoreError::FingerprintMismatch { .. }) => {}
            r => panic!("expected fingerprint mismatch, got {r:?}"),
        }
        // Different shard count: refused.
        assert!(matches!(ensure_manifest(&dir, &cfg, 3), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sample_records() -> Vec<TrialRecord> {
        vec![
            TrialRecord {
                site: FaultSite::IntReg,
                trial: 0,
                outcome: Outcome::Detected,
                latency_fs: Some(123_456),
                retries: None,
                recovery_fs: None,
            },
            TrialRecord {
                site: FaultSite::Pc,
                trial: 3,
                outcome: Outcome::Masked,
                latency_fs: None,
                retries: None,
                recovery_fs: None,
            },
            TrialRecord {
                site: FaultSite::CheckerFalsePos,
                trial: 7,
                outcome: Outcome::Recovered { retries: 2 },
                latency_fs: Some(9_999),
                retries: Some(2),
                recovery_fs: Some(42_000_000),
            },
        ]
    }

    #[test]
    fn checkpoint_round_trips() {
        let dir = tmpdir("ckpt");
        let shard = ShardSpec::new(0, 2);
        let records = sample_records();
        write_checkpoint(&dir, shard, "deadbeef", &records).unwrap();
        let back = read_checkpoint(&dir, shard, "deadbeef").unwrap().unwrap();
        assert_eq!(back, records);
        assert_eq!(back[2].outcome, Outcome::Recovered { retries: 2 }, "retry count survives");
        // Wrong fingerprint: refused.
        assert!(matches!(
            read_checkpoint(&dir, shard, "cafebabe"),
            Err(StoreError::FingerprintMismatch { .. })
        ));
        // Absent shard: None.
        assert!(read_checkpoint(&dir, ShardSpec::new(1, 2), "deadbeef").unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_byte_flip_is_corrupt() {
        let dir = tmpdir("bitrot");
        let shard = ShardSpec::new(0, 1);
        write_checkpoint(&dir, shard, "deadbeef", &sample_records()).unwrap();
        let path = checkpoint_path(&dir, shard);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the *second* line (an interior trial record):
        // past the header, well before the file's tail.
        let text = String::from_utf8(bytes.clone()).unwrap();
        let second_line_start = text.find('\n').unwrap() + 1;
        bytes[second_line_start + 10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            matches!(read_checkpoint(&dir, shard, "deadbeef"), Err(StoreError::Corrupt(_))),
            "a flipped interior byte must fail the line checksum"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chopped_tail_repairs_to_prefix() {
        let dir = tmpdir("chop");
        let shard = ShardSpec::new(0, 1);
        let records = sample_records();
        write_checkpoint(&dir, shard, "deadbeef", &records).unwrap();
        let path = checkpoint_path(&dir, shard);
        let text = std::fs::read_to_string(&path).unwrap();
        // Chop the file mid-way through its final line — a torn append.
        let chopped = &text[..text.len() - 17];
        std::fs::write(&path, chopped).unwrap();
        let back = read_checkpoint(&dir, shard, "deadbeef").unwrap().unwrap();
        assert_eq!(back, records[..2], "intact prefix survives, torn tail is dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_checkpoint_is_refused_by_schema() {
        let dir = tmpdir("v1ckpt");
        let shard = ShardSpec::new(0, 1);
        // A v1 header as the old writer produced it (no crc field).
        let v1 = "{\"schema\": \"paradet-campaign-ckpt/v1\", \"fingerprint\": \"deadbeef\", \
                  \"shard\": \"0/1\"}\n\
                  {\"site\": \"pc\", \"trial\": 0, \"outcome\": \"masked\"}\n";
        std::fs::write(checkpoint_path(&dir, shard), v1).unwrap();
        match read_checkpoint(&dir, shard, "deadbeef") {
            Err(StoreError::SchemaVersion { found, expected }) => {
                assert_eq!(found, "paradet-campaign-ckpt/v1");
                assert_eq!(expected, CHECKPOINT_SCHEMA);
            }
            r => panic!("expected SchemaVersion, got {r:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_manifest_is_refused_by_schema() {
        let v1 = "{\n  \"schema\": \"paradet-campaign-manifest/v1\",\n  \
                  \"fingerprint\": \"deadbeef\",\n  \"seed\": 42\n}\n";
        assert!(matches!(Manifest::parse(v1), Err(StoreError::SchemaVersion { .. })));
    }

    #[test]
    fn fingerprint_covers_fault_kind_and_recovery() {
        let base = CampaignConfig::default();
        let f0 = fingerprint(&base);
        let kind = CampaignConfig { fault_kind: paradet_ooo::FaultKind::Permanent, ..base.clone() };
        assert_ne!(f0, fingerprint(&kind), "fault kind must refingerprint");
        let recov = CampaignConfig {
            recovery: Some(paradet_core::RecoveryPolicy::default()),
            ..base.clone()
        };
        assert_ne!(f0, fingerprint(&recov), "recovery policy must refingerprint");
        let retries = CampaignConfig {
            recovery: Some(paradet_core::RecoveryPolicy {
                max_retries: 5,
                ..paradet_core::RecoveryPolicy::default()
            }),
            ..base
        };
        assert_ne!(fingerprint(&recov), fingerprint(&retries));
    }

    #[test]
    fn status_round_trips() {
        let dir = tmpdir("status");
        let shard = ShardSpec::new(1, 3);
        write_status(&dir, shard, "running", 7, 12).unwrap();
        let s = read_status(&dir, shard).expect("status readable");
        assert_eq!((s.state.as_str(), s.done, s.total), ("running", 7, 12));
        // Absent shard: None, not an error.
        assert!(read_status(&dir, ShardSpec::new(2, 3)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite regression: a stale lock from a dead owner is taken over
    /// automatically; a lock held by a genuinely live process refuses.
    #[test]
    fn dead_owner_lock_is_taken_over_live_owner_refuses() {
        let dir = tmpdir("lock");
        let shard = ShardSpec::new(0, 1);
        let path = lock_path(&dir, shard);

        // A lock whose pid cannot exist (> kernel pid_max) — SIGKILLed
        // owner long gone: taken over without ceremony.
        std::fs::write(&path, "4194999999 12345\n").unwrap();
        let (lock, took_over) = ShardLock::acquire(&dir, shard).unwrap();
        assert!(took_over, "a dead owner's lock must be taken over");
        drop(lock);
        assert!(!path.exists(), "clean drop removes the lock");

        // Our own pid with a *stale* boot token — the pid-reuse shape (a
        // recycled pid on a different process instance): taken over.
        std::fs::write(&path, format!("{} not-a-real-token\n", std::process::id())).unwrap();
        let (lock, took_over) = ShardLock::acquire(&dir, shard).unwrap();
        assert!(took_over, "a recycled pid must read as a dead owner");
        drop(lock);

        // A genuinely live owner (pid 1 — init/systemd, always alive,
        // never us) with its real boot token: refused.
        if let Some(token) = boot_token_of(1) {
            std::fs::write(&path, format!("1 {token}\n")).unwrap();
            match ShardLock::acquire(&dir, shard) {
                Err(StoreError::Locked(m)) => {
                    assert!(m.contains("live process"), "error must say why: {m}")
                }
                r => panic!("a live owner must refuse, got {r:?}"),
            }
            std::fs::remove_file(&path).unwrap();
        }

        // Unparseable legacy lock: treated as dead, taken over.
        std::fs::write(&path, "garbage\n").unwrap();
        let (_lock, took_over) = ShardLock::acquire(&dir, shard).unwrap();
        assert!(took_over);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_lock_acquires_and_releases() {
        let dir = tmpdir("lock2");
        let shard = ShardSpec::new(0, 1);
        let (lock, took_over) = ShardLock::acquire(&dir, shard).unwrap();
        assert!(!took_over, "a fresh acquire takes over nothing");
        // The lock file records our pid + boot token.
        let body = std::fs::read_to_string(lock_path(&dir, shard)).unwrap();
        let mut it = body.split_whitespace();
        assert_eq!(it.next().unwrap(), std::process::id().to_string());
        assert!(it.next().is_some(), "boot token recorded");
        drop(lock);
        drop(ShardLock::acquire(&dir, shard).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite regression: stranded `*.tmp` staging files (a kill
    /// between write and rename) are swept on store open; live files and
    /// a live owner's tmp are untouched.
    #[test]
    fn sweep_removes_stranded_tmp_and_keeps_live_files() {
        let dir = tmpdir("sweep");
        // A stranded tmp from a dead pid, a legacy tmp with no pid, a
        // live checkpoint, and a tmp owned by a live process (pid 1).
        std::fs::write(dir.join("shard-0-of-2.jsonl.4194999999.tmp"), "stranded").unwrap();
        std::fs::write(dir.join("run_manifest.tmp"), "legacy").unwrap();
        std::fs::write(dir.join("shard-0-of-2.jsonl"), "live checkpoint").unwrap();
        std::fs::write(dir.join("status-shard-1.json.1.tmp"), "live owner").unwrap();

        let removed = sweep_stale_tmp_on(&RealFs, &dir);
        assert_eq!(removed.len(), 2, "exactly the stranded + legacy tmps go: {removed:?}");
        assert!(!dir.join("shard-0-of-2.jsonl.4194999999.tmp").exists());
        assert!(!dir.join("run_manifest.tmp").exists());
        assert_eq!(
            std::fs::read_to_string(dir.join("shard-0-of-2.jsonl")).unwrap(),
            "live checkpoint",
            "live files are untouched"
        );
        assert!(
            dir.join("status-shard-1.json.1.tmp").exists(),
            "a live owner's in-flight tmp is left alone"
        );
        // Sweeping a missing directory is a quiet no-op.
        assert!(sweep_stale_tmp_on(&RealFs, &dir.join("nope")).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}";
        assert_eq!(json_unescape(&json_escape(s)), s);
    }
}
