//! Flag parsing shared by the `campaignd` and `campaign-merge` binaries.
//!
//! Both binaries describe a campaign with the same flags, and both must
//! turn them into the same [`CampaignConfig`] — the config fingerprint
//! that gates resume and merge is computed from it, so a parsing
//! divergence between the binaries would read as a (spurious) fingerprint
//! mismatch. Keeping the parsing here makes that impossible.

use crate::campaign::{CampaignConfig, FaultSite};
use paradet_core::SystemConfig;
use paradet_workloads::Workload;

/// The campaign-describing flags both binaries accept.
pub const CONFIG_FLAGS_HELP: &str = "\
  --workload <name>         workload kernel (default freqmine)
  --instrs <n>              dynamic instructions per trial (default 20000)
  --trials-per-site <n>     trials per fault-site class (default 50)
  --seed <n>                campaign RNG seed (default 42)
  --sites <a,b,...>         fault-site classes (default: all eight)
  --no-lfu                  disable the load forwarding unit (ablation)";

/// Removes `--name <value>` from `args`, returning the value.
pub fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{name} requires a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

/// Removes the bare switch `--name` from `args`, returning whether it was
/// present.
pub fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == name) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Parses the shared campaign-config flags out of `args` (consuming them).
/// Returns the config and whether *any* config flag was explicitly given —
/// `campaign-merge` only enforces the fingerprint expectation when the
/// caller actually described a campaign.
pub fn parse_campaign_flags(args: &mut Vec<String>) -> Result<(CampaignConfig, bool), String> {
    let mut cfg = CampaignConfig::default();
    let mut explicit = false;

    if let Some(w) = take_value(args, "--workload")? {
        cfg.workload = Workload::by_name(&w).ok_or_else(|| format!("unknown workload `{w}`"))?;
        explicit = true;
    }
    if let Some(v) = take_value(args, "--instrs")? {
        cfg.instrs = v.parse().map_err(|_| format!("bad --instrs `{v}`"))?;
        explicit = true;
    }
    if let Some(v) = take_value(args, "--trials-per-site")? {
        cfg.trials_per_site = v.parse().map_err(|_| format!("bad --trials-per-site `{v}`"))?;
        explicit = true;
    }
    if let Some(v) = take_value(args, "--seed")? {
        cfg.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
        explicit = true;
    }
    if let Some(v) = take_value(args, "--sites")? {
        cfg.sites = v
            .split(',')
            .map(|n| {
                FaultSite::from_name(n.trim())
                    .ok_or_else(|| format!("unknown fault site `{}`", n.trim()))
            })
            .collect::<Result<_, _>>()?;
        if cfg.sites.is_empty() {
            return Err("--sites needs at least one site".to_string());
        }
        explicit = true;
    }
    if take_switch(args, "--no-lfu") {
        cfg.system = SystemConfig { lfu_enabled: false, ..cfg.system };
        explicit = true;
    }
    Ok((cfg, explicit))
}

/// Fails on any remaining `--flag` the binary didn't consume (typo guard:
/// a misspelled flag must not silently fall back to a default config,
/// where it would fingerprint as a different campaign).
pub fn reject_unknown(args: &[String]) -> Result<(), String> {
    if let Some(a) = args.iter().find(|a| a.starts_with('-')) {
        return Err(format!("unknown flag `{a}`"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults_when_no_flags() {
        let mut args = argv(&[]);
        let (cfg, explicit) = parse_campaign_flags(&mut args).unwrap();
        assert!(!explicit);
        assert_eq!(cfg.seed, CampaignConfig::default().seed);
    }

    #[test]
    fn flags_override_and_consume() {
        let mut args = argv(&[
            "--workload",
            "stream",
            "--seed",
            "7",
            "--sites",
            "pc,int-reg",
            "--no-lfu",
            "--dir",
            "x",
        ]);
        let (cfg, explicit) = parse_campaign_flags(&mut args).unwrap();
        assert!(explicit);
        assert_eq!(cfg.workload.name(), "stream");
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.sites, vec![FaultSite::Pc, FaultSite::IntReg]);
        assert!(!cfg.system.lfu_enabled);
        assert_eq!(args, argv(&["--dir", "x"]));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(reject_unknown(&argv(&["--wrokload", "stream"])).is_err());
        assert!(reject_unknown(&argv(&[])).is_ok());
    }

    #[test]
    fn bad_values_error() {
        assert!(parse_campaign_flags(&mut argv(&["--workload", "nope"])).is_err());
        assert!(parse_campaign_flags(&mut argv(&["--instrs", "many"])).is_err());
        assert!(parse_campaign_flags(&mut argv(&["--seed"])).is_err());
    }
}
