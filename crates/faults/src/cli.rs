//! Flag parsing shared by the `campaignd` and `campaign-merge` binaries.
//!
//! Both binaries describe a campaign with the same flags, and both must
//! turn them into the same [`CampaignConfig`] — the config fingerprint
//! that gates resume and merge is computed from it, so a parsing
//! divergence between the binaries would read as a (spurious) fingerprint
//! mismatch. Keeping the parsing here makes that impossible.

use crate::campaign::{CampaignConfig, FaultSite};
use crate::store::StoreError;
use paradet_core::{RecoveryPolicy, SystemConfig};
use paradet_ooo::FaultKind;
use paradet_workloads::Workload;

/// The one exit-code table of the campaign binaries. `campaignd`,
/// `campaign-merge`, and the supervisor all map through here — a code
/// must mean the same thing no matter which binary printed it, because
/// the supervisor's retry/quarantine decisions key off its children's
/// codes.
pub mod exit {
    use super::StoreError;

    /// Success.
    pub const OK: i32 = 0;
    /// Unclassified store error (I/O and other [`StoreError`] variants
    /// without a dedicated code).
    pub const STORE: i32 = 1;
    /// Bad flags / usage.
    pub const USAGE: i32 = 2;
    /// Config fingerprint mismatch: the directory belongs to a different
    /// campaign ([`StoreError::FingerprintMismatch`]).
    pub const FINGERPRINT_MISMATCH: i32 = 3;
    /// Shard locked by a live process, or its finished checkpoint exists
    /// without `--resume` ([`StoreError::Locked`]).
    pub const LOCKED: i32 = 4;
    /// Merge found missing/short shards ([`StoreError::Incomplete`]) —
    /// `campaign-merge --partial` renders them explicitly instead.
    pub const INCOMPLETE: i32 = 5;
    /// Store written by an incompatible schema version
    /// ([`StoreError::SchemaVersion`]).
    pub const SCHEMA_VERSION: i32 = 6;
    /// A supervised campaign quarantined at least one shard as degraded;
    /// the partial checkpoints remain mergeable.
    pub const DEGRADED: i32 = 7;

    /// The exit code a [`StoreError`] maps to, in every binary.
    pub fn code_for(e: &StoreError) -> i32 {
        match e {
            StoreError::FingerprintMismatch { .. } => FINGERPRINT_MISMATCH,
            StoreError::Locked(_) => LOCKED,
            StoreError::Incomplete(_) => INCOMPLETE,
            StoreError::SchemaVersion { .. } => SCHEMA_VERSION,
            StoreError::Io(_) | StoreError::Corrupt(_) => STORE,
        }
    }
}

/// The campaign-describing flags both binaries accept.
pub const CONFIG_FLAGS_HELP: &str = "\
  --workload <name>         workload kernel (default freqmine)
  --instrs <n>              dynamic instructions per trial (default 20000)
  --trials-per-site <n>     trials per fault-site class (default 50)
  --seed <n>                campaign RNG seed (default 42)
  --sites <a,b,...>         fault-site classes (default: the eight legacy
                            sites; `extended` selects all thirteen)
  --fault-kind <k>          transient | intermittent:<period>,<count> |
                            permanent (default transient)
  --recover                 run trials under the rollback/re-execute driver
  --max-retries <n>         rollback budget before degrading (implies
                            --recover; default 3)
  --no-lfu                  disable the load forwarding unit (ablation)";

/// Parses a `--fault-kind` value.
pub fn parse_fault_kind(v: &str) -> Result<FaultKind, String> {
    match v {
        "transient" => Ok(FaultKind::Transient),
        "permanent" => Ok(FaultKind::Permanent),
        other => {
            let spec = other
                .strip_prefix("intermittent:")
                .ok_or_else(|| format!("bad --fault-kind `{other}`"))?;
            let (p, c) = spec
                .split_once(',')
                .ok_or_else(|| format!("bad --fault-kind `{other}` (want period,count)"))?;
            let period = p.parse().map_err(|_| format!("bad intermittent period `{p}`"))?;
            let count = c.parse().map_err(|_| format!("bad intermittent count `{c}`"))?;
            Ok(FaultKind::Intermittent { period, count })
        }
    }
}

/// Removes `--name <value>` from `args`, returning the value.
pub fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{name} requires a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

/// Removes the bare switch `--name` from `args`, returning whether it was
/// present.
pub fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == name) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Parses the shared campaign-config flags out of `args` (consuming them).
/// Returns the config and whether *any* config flag was explicitly given —
/// `campaign-merge` only enforces the fingerprint expectation when the
/// caller actually described a campaign.
pub fn parse_campaign_flags(args: &mut Vec<String>) -> Result<(CampaignConfig, bool), String> {
    let mut cfg = CampaignConfig::default();
    let mut explicit = false;

    if let Some(w) = take_value(args, "--workload")? {
        cfg.workload = Workload::by_name(&w).ok_or_else(|| format!("unknown workload `{w}`"))?;
        explicit = true;
    }
    if let Some(v) = take_value(args, "--instrs")? {
        cfg.instrs = v.parse().map_err(|_| format!("bad --instrs `{v}`"))?;
        explicit = true;
    }
    if let Some(v) = take_value(args, "--trials-per-site")? {
        cfg.trials_per_site = v.parse().map_err(|_| format!("bad --trials-per-site `{v}`"))?;
        explicit = true;
    }
    if let Some(v) = take_value(args, "--seed")? {
        cfg.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
        explicit = true;
    }
    if let Some(v) = take_value(args, "--sites")? {
        if v.trim() == "extended" {
            cfg.sites = FaultSite::extended().to_vec();
        } else {
            cfg.sites = v
                .split(',')
                .map(|n| {
                    FaultSite::from_name(n.trim())
                        .ok_or_else(|| format!("unknown fault site `{}`", n.trim()))
                })
                .collect::<Result<_, _>>()?;
        }
        if cfg.sites.is_empty() {
            return Err("--sites needs at least one site".to_string());
        }
        explicit = true;
    }
    if let Some(v) = take_value(args, "--fault-kind")? {
        cfg.fault_kind = parse_fault_kind(&v)?;
        explicit = true;
    }
    if take_switch(args, "--recover") {
        cfg.recovery = Some(RecoveryPolicy::default());
        explicit = true;
    }
    if let Some(v) = take_value(args, "--max-retries")? {
        let max_retries = v.parse().map_err(|_| format!("bad --max-retries `{v}`"))?;
        let base = cfg.recovery.unwrap_or_default();
        cfg.recovery = Some(RecoveryPolicy { max_retries, ..base });
        explicit = true;
    }
    if take_switch(args, "--no-lfu") {
        cfg.system = SystemConfig { lfu_enabled: false, ..cfg.system };
        explicit = true;
    }
    Ok((cfg, explicit))
}

/// Renders a config back into the flag list [`parse_campaign_flags`]
/// accepts — the inverse the supervisor uses to respawn shard children
/// with *exactly* the campaign it was given. Every CLI-expressible field
/// is rendered explicitly (no reliance on defaults), and the round-trip
/// is unit-tested; if a future field were missed anyway, the children
/// would fingerprint differently and exit
/// [`FINGERPRINT_MISMATCH`](exit::FINGERPRINT_MISMATCH) — a visible
/// quarantine, never a silently different campaign.
pub fn render_config_flags(cfg: &CampaignConfig) -> Vec<String> {
    let mut flags = vec![
        "--workload".to_string(),
        cfg.workload.name().to_string(),
        "--instrs".to_string(),
        cfg.instrs.to_string(),
        "--trials-per-site".to_string(),
        cfg.trials_per_site.to_string(),
        "--seed".to_string(),
        cfg.seed.to_string(),
        "--sites".to_string(),
        cfg.sites.iter().map(|s| s.name()).collect::<Vec<_>>().join(","),
        "--fault-kind".to_string(),
        match cfg.fault_kind {
            FaultKind::Transient => "transient".to_string(),
            FaultKind::Permanent => "permanent".to_string(),
            FaultKind::Intermittent { period, count } => {
                format!("intermittent:{period},{count}")
            }
        },
    ];
    if let Some(r) = &cfg.recovery {
        flags.push("--recover".to_string());
        flags.push("--max-retries".to_string());
        flags.push(r.max_retries.to_string());
    }
    if !cfg.system.lfu_enabled {
        flags.push("--no-lfu".to_string());
    }
    flags
}

/// Fails on any remaining `--flag` the binary didn't consume (typo guard:
/// a misspelled flag must not silently fall back to a default config,
/// where it would fingerprint as a different campaign).
pub fn reject_unknown(args: &[String]) -> Result<(), String> {
    if let Some(a) = args.iter().find(|a| a.starts_with('-')) {
        return Err(format!("unknown flag `{a}`"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn defaults_when_no_flags() {
        let mut args = argv(&[]);
        let (cfg, explicit) = parse_campaign_flags(&mut args).unwrap();
        assert!(!explicit);
        assert_eq!(cfg.seed, CampaignConfig::default().seed);
    }

    #[test]
    fn flags_override_and_consume() {
        let mut args = argv(&[
            "--workload",
            "stream",
            "--seed",
            "7",
            "--sites",
            "pc,int-reg",
            "--no-lfu",
            "--dir",
            "x",
        ]);
        let (cfg, explicit) = parse_campaign_flags(&mut args).unwrap();
        assert!(explicit);
        assert_eq!(cfg.workload.name(), "stream");
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.sites, vec![FaultSite::Pc, FaultSite::IntReg]);
        assert!(!cfg.system.lfu_enabled);
        assert_eq!(args, argv(&["--dir", "x"]));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(reject_unknown(&argv(&["--wrokload", "stream"])).is_err());
        assert!(reject_unknown(&argv(&[])).is_ok());
    }

    #[test]
    fn bad_values_error() {
        assert!(parse_campaign_flags(&mut argv(&["--workload", "nope"])).is_err());
        assert!(parse_campaign_flags(&mut argv(&["--instrs", "many"])).is_err());
        assert!(parse_campaign_flags(&mut argv(&["--seed"])).is_err());
        assert!(parse_campaign_flags(&mut argv(&["--fault-kind", "flaky"])).is_err());
        assert!(parse_campaign_flags(&mut argv(&["--fault-kind", "intermittent:40"])).is_err());
        assert!(parse_campaign_flags(&mut argv(&["--max-retries", "lots"])).is_err());
    }

    #[test]
    fn render_round_trips_through_parse() {
        use crate::store::fingerprint;
        let configs = vec![
            CampaignConfig::default(),
            CampaignConfig {
                workload: Workload::Stream,
                instrs: 2_500,
                trials_per_site: 4,
                seed: 7,
                sites: vec![FaultSite::Pc, FaultSite::IntReg],
                fault_kind: FaultKind::Intermittent { period: 40, count: 3 },
                recovery: Some(RecoveryPolicy { max_retries: 5, ..RecoveryPolicy::default() }),
                system: SystemConfig { lfu_enabled: false, ..SystemConfig::paper_default() },
            },
            CampaignConfig {
                fault_kind: FaultKind::Permanent,
                recovery: Some(RecoveryPolicy::default()),
                sites: FaultSite::extended().to_vec(),
                ..CampaignConfig::default()
            },
        ];
        for cfg in configs {
            let mut flags = render_config_flags(&cfg);
            let (back, explicit) = parse_campaign_flags(&mut flags).unwrap();
            assert!(explicit && flags.is_empty());
            // The fingerprint is the equality that matters: it is what
            // gates a supervisor-respawned child against its parent.
            assert_eq!(
                fingerprint(&back).hex(),
                fingerprint(&cfg).hex(),
                "render→parse must preserve the campaign identity of {cfg:?}"
            );
        }
    }

    #[test]
    fn exit_codes_are_stable_and_distinct() {
        use super::exit;
        let all = [
            exit::OK,
            exit::STORE,
            exit::USAGE,
            exit::FINGERPRINT_MISMATCH,
            exit::LOCKED,
            exit::INCOMPLETE,
            exit::SCHEMA_VERSION,
            exit::DEGRADED,
        ];
        assert_eq!(all, [0, 1, 2, 3, 4, 5, 6, 7], "codes are a public contract");
        assert_eq!(
            exit::code_for(&crate::store::StoreError::Incomplete("x".into())),
            exit::INCOMPLETE
        );
        assert_eq!(exit::code_for(&crate::store::StoreError::Locked("x".into())), exit::LOCKED);
    }

    #[test]
    fn recovery_flags_parse() {
        let mut args = argv(&[
            "--fault-kind",
            "intermittent:40,3",
            "--recover",
            "--max-retries",
            "5",
            "--sites",
            "extended",
        ]);
        let (cfg, explicit) = parse_campaign_flags(&mut args).unwrap();
        assert!(explicit && args.is_empty());
        assert_eq!(cfg.fault_kind, FaultKind::Intermittent { period: 40, count: 3 });
        assert_eq!(cfg.recovery.unwrap().max_retries, 5);
        assert_eq!(cfg.sites, FaultSite::extended().to_vec());
        // --max-retries alone implies recovery.
        let (cfg, _) = parse_campaign_flags(&mut argv(&["--max-retries", "2"])).unwrap();
        assert_eq!(cfg.recovery.unwrap().max_retries, 2);
        assert_eq!(parse_fault_kind("permanent").unwrap(), FaultKind::Permanent);
        assert_eq!(parse_fault_kind("transient").unwrap(), FaultKind::Transient);
    }
}
