//! `campaignd` — runs a fault campaign one-shot, one resumable shard of
//! it against an on-disk checkpoint store, or a whole supervised fleet of
//! shard workers that restarts itself.
//!
//! ```text
//! # The in-memory one-shot (the golden reference):
//! campaignd --one-shot [config flags] [--out coverage.csv]
//!
//! # One shard of a 2-way split, checkpointing every 5 trials:
//! campaignd --shard 0/2 --dir camp/ --checkpoint-every 5 [config flags]
//!
//! # Resume it after a crash or SIGKILL:
//! campaignd --shard 0/2 --resume camp/ --checkpoint-every 5 [config flags]
//!
//! # Self-healing: spawn both shards, restart crashes/hangs, merge:
//! campaignd --supervise 2 --dir camp/ --checkpoint-every 5 [config flags]
//! ```
//!
//! Shards of one campaign can run in any order, in parallel processes, on
//! different hosts sharing the directory. After every shard completes,
//! `campaign-merge --dir camp/` folds the checkpoints into a coverage
//! table byte-identical to `--one-shot` with the same config flags —
//! `--supervise` does the same merge itself on success. A supervised run
//! that exhausts a shard's restart budget quarantines it as *degraded*,
//! exits 7, and leaves the partial checkpoints for
//! `campaign-merge --partial`.
//!
//! Exit codes (the shared table in `paradet_faults::cli::exit`): 0
//! success, 1 other store errors, 2 usage, 3 config-fingerprint mismatch,
//! 4 shard locked by a live process / checkpoint exists without
//! `--resume`, 5 incomplete merge, 6 incompatible store schema version,
//! 7 supervised run degraded.
//!
//! Fault-injection hooks (the service tests itself with them):
//! `--exit-after-checkpoints <k>` `abort()`s (as if SIGKILLed) right
//! after the k-th checkpoint write; the `PARADET_CHAOS` env var (script
//! grammar in `paradet_faults::chaosfs`) routes all store I/O through a
//! deterministic fault-injecting filesystem, with
//! `PARADET_CHAOS_ATTEMPT` selecting which incarnation's entries arm —
//! the supervisor exports both to its children via `--chaos`.

use paradet_faults::chaosfs::{ChaosFs, ChaosScript, KillMode};
use paradet_faults::cli::{exit, parse_campaign_flags, reject_unknown, take_switch, take_value};
use paradet_faults::supervisor::{supervise_processes, ShardCommand, ShardFate, SupervisePolicy};
use paradet_faults::{
    coverage_table, merge_campaign, merged_table, real_fs, recovery_table, run_campaign,
    run_campaign_shard_on, DynFs, ShardRunOptions, ShardSpec, StoreError,
};
use std::path::PathBuf;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: campaignd (--one-shot | --shard i/n | --supervise n) [options]\n\
         \n\
         modes:\n  \
         --one-shot                run the whole campaign in memory, print the coverage table\n  \
         --shard <i/n>             run slice i of an n-way split against --dir\n  \
         --supervise <n>           spawn all n shards as children, restart crashed/hung ones,\n                            merge on success (degraded shards quarantine; exit 7)\n\
         \n\
         shard options:\n  \
         --dir <dir>               campaign directory (manifest, checkpoints, status, locks)\n  \
         --resume <dir>            like --dir, but continue from the existing checkpoint\n  \
         --checkpoint-every <n>    trials between checkpoints (default 25)\n  \
         --exit-after-checkpoints <k>  abort() after the k-th checkpoint (fault-injection hook)\n\
         \n\
         supervise options:\n  \
         --max-restarts <n>        restarts per shard before quarantine (default 3)\n  \
         --heartbeat-timeout-ms <ms>  stale-heartbeat deadline (default 30000)\n  \
         --backoff-base-ms <ms>    restart backoff base (default 200)\n  \
         --chaos <script>          chaos script exported to children (fault-injection hook)\n\
         \n\
         output:\n  \
         --out <csv>               write the coverage table as CSV (one-shot/supervise)\n\
         \n\
         campaign config:\n{}",
        paradet_faults::cli::CONFIG_FLAGS_HELP
    );
    std::process::exit(exit::USAGE);
}

fn fail(e: &StoreError) -> ! {
    eprintln!("campaignd: {e}");
    std::process::exit(exit::code_for(e));
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_campaign_flags(&mut args);
    let (cfg, _) = match parsed {
        Ok(x) => x,
        Err(e) => {
            eprintln!("campaignd: {e}");
            usage();
        }
    };

    let one_shot = take_switch(&mut args, "--one-shot");
    let shard_arg = take_value(&mut args, "--shard").unwrap_or_else(|e| {
        eprintln!("campaignd: {e}");
        usage();
    });
    let supervise_arg = take_value(&mut args, "--supervise").unwrap_or_else(|_| usage());
    let dir_arg = take_value(&mut args, "--dir").unwrap_or_else(|_| usage());
    let resume_arg = take_value(&mut args, "--resume").unwrap_or_else(|_| usage());
    let every: u64 = take_value(&mut args, "--checkpoint-every")
        .unwrap_or_else(|_| usage())
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(25);
    let exit_after: Option<u64> = take_value(&mut args, "--exit-after-checkpoints")
        .unwrap_or_else(|_| usage())
        .map(|v| v.parse().unwrap_or_else(|_| usage()));
    let max_restarts: u32 = take_value(&mut args, "--max-restarts")
        .unwrap_or_else(|_| usage())
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(3);
    let heartbeat_timeout_ms: u64 = take_value(&mut args, "--heartbeat-timeout-ms")
        .unwrap_or_else(|_| usage())
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(30_000);
    let backoff_base_ms: u64 = take_value(&mut args, "--backoff-base-ms")
        .unwrap_or_else(|_| usage())
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(200);
    let chaos = take_value(&mut args, "--chaos").unwrap_or_else(|_| usage());
    let out = take_value(&mut args, "--out").unwrap_or_else(|_| usage()).map(PathBuf::from);
    if let Err(e) = reject_unknown(&args) {
        eprintln!("campaignd: {e}");
        usage();
    }

    match (one_shot, shard_arg, supervise_arg) {
        (true, None, None) => {
            let result = run_campaign(&cfg);
            // Recovery campaigns render the coverage-by-fault-class table;
            // detection-only campaigns keep the historic coverage table.
            let table = match &cfg.recovery {
                Some(_) => recovery_table(cfg.workload.name(), cfg.fault_kind.name(), &result),
                None => coverage_table(cfg.workload.name(), &result),
            };
            print!("{}", table.render());
            if let Some(path) = out {
                table.write_csv(&path).unwrap_or_else(|e| {
                    eprintln!("campaignd: writing {}: {e}", path.display());
                    std::process::exit(exit::STORE);
                });
                eprintln!("wrote {}", path.display());
            }
        }
        (false, Some(spec), None) => {
            let shard = ShardSpec::parse(&spec).unwrap_or_else(|e| {
                eprintln!("campaignd: --shard: {e}");
                usage();
            });
            let (dir, resume) = match (dir_arg, resume_arg) {
                (Some(d), None) => (PathBuf::from(d), false),
                (None, Some(d)) => (PathBuf::from(d), true),
                _ => {
                    eprintln!("campaignd: --shard needs exactly one of --dir or --resume");
                    usage();
                }
            };
            // The chaos hook: PARADET_CHAOS (set by the supervisor or a
            // test) replays a scripted fault plan over this shard's store
            // I/O. Kills are real aborts — this is a real process.
            let fs: DynFs = match ChaosFs::from_env(KillMode::Abort) {
                Ok(Some(chaos)) => Arc::new(chaos),
                Ok(None) => real_fs(),
                Err(e) => {
                    eprintln!("campaignd: PARADET_CHAOS: {e}");
                    usage();
                }
            };
            let opts = ShardRunOptions { shard, checkpoint_every: every, resume };
            let mut checkpoints = 0u64;
            let summary = run_campaign_shard_on(&fs, &dir, &cfg, &opts, |done, total| {
                checkpoints += 1;
                eprintln!("shard {shard}: {done}/{total} trials checkpointed");
                if exit_after == Some(checkpoints) {
                    // Simulate a SIGKILL mid-campaign: no cleanup, no lock
                    // release, no final status — the resume path must cope.
                    eprintln!("shard {shard}: aborting after checkpoint {checkpoints} (--exit-after-checkpoints)");
                    std::process::abort();
                }
            })
            .unwrap_or_else(|e| fail(&e));
            println!(
                "shard {shard} complete: {} trials ({} resumed, {} run) in {}",
                summary.total,
                summary.resumed_from,
                summary.total - summary.resumed_from,
                dir.display()
            );
        }
        (false, None, Some(n)) => {
            let shards: u32 = n.parse().unwrap_or_else(|_| {
                eprintln!("campaignd: --supervise wants a shard count");
                usage();
            });
            if shards == 0 {
                eprintln!("campaignd: --supervise needs at least one shard");
                usage();
            }
            let Some(dir) = dir_arg.map(PathBuf::from) else {
                eprintln!("campaignd: --supervise needs --dir");
                usage();
            };
            if let Some(script) = &chaos {
                // Validate up front: a typo'd script must be a usage
                // error here, not a mystery child crash loop.
                if let Err(e) = ChaosScript::parse(script) {
                    eprintln!("campaignd: --chaos: {e}");
                    usage();
                }
            }
            let program = std::env::current_exe().unwrap_or_else(|e| {
                eprintln!("campaignd: cannot locate own binary: {e}");
                std::process::exit(exit::STORE);
            });
            let cmd = ShardCommand {
                program,
                config_flags: paradet_faults::cli::render_config_flags(&cfg),
                dir: dir.clone(),
                shards,
                checkpoint_every: every,
                chaos,
            };
            let policy = SupervisePolicy {
                max_restarts,
                heartbeat_timeout_ms,
                backoff_base_ms,
                seed: cfg.seed,
                ..SupervisePolicy::default()
            };
            let outcome = supervise_processes(&cmd, &policy, |line| eprintln!("campaignd: {line}"));
            if outcome.all_completed() {
                let (manifest, result) =
                    merge_campaign(&dir, Some(&cfg)).unwrap_or_else(|e| fail(&e));
                let table = merged_table(&manifest, &result);
                print!("{}", table.render());
                eprintln!(
                    "supervised {} shards to completion, {} trials, fingerprint {}",
                    shards,
                    result.trials.len(),
                    manifest.fingerprint
                );
                if let Some(path) = out {
                    table.write_csv(&path).unwrap_or_else(|e| {
                        eprintln!("campaignd: writing {}: {e}", path.display());
                        std::process::exit(exit::STORE);
                    });
                    eprintln!("wrote {}", path.display());
                }
            } else {
                for (i, fate) in outcome.fates.iter().enumerate() {
                    if let ShardFate::Degraded { restarts, reason } = fate {
                        eprintln!(
                            "campaignd: shard {i}/{shards} DEGRADED after {restarts} \
                             restart(s): {reason}"
                        );
                    }
                }
                eprintln!(
                    "campaignd: campaign degraded; partial checkpoints kept in {} — \
                     render them with `campaign-merge --partial --dir {}`",
                    dir.display(),
                    dir.display()
                );
                std::process::exit(exit::DEGRADED);
            }
        }
        _ => {
            eprintln!("campaignd: pass exactly one of --one-shot, --shard i/n, or --supervise n");
            usage();
        }
    }
}
