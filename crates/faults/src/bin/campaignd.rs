//! `campaignd` — runs a fault campaign one-shot, or one resumable shard of
//! it against an on-disk checkpoint store.
//!
//! ```text
//! # The in-memory one-shot (the golden reference):
//! campaignd --one-shot [config flags] [--out coverage.csv]
//!
//! # One shard of a 2-way split, checkpointing every 5 trials:
//! campaignd --shard 0/2 --dir camp/ --checkpoint-every 5 [config flags]
//!
//! # Resume it after a crash or SIGKILL:
//! campaignd --shard 0/2 --resume camp/ --checkpoint-every 5 [config flags]
//! ```
//!
//! Shards of one campaign can run in any order, in parallel processes, on
//! different hosts sharing the directory. After every shard completes,
//! `campaign-merge --dir camp/` folds the checkpoints into a coverage
//! table byte-identical to `--one-shot` with the same config flags.
//!
//! Exit codes: 0 success, 2 usage, 3 config-fingerprint mismatch, 4 shard
//! locked / checkpoint exists without `--resume`, 6 store written by an
//! incompatible schema version (e.g. a v1 directory), 1 other store
//! errors.
//!
//! `--exit-after-checkpoints <k>` is the service's own fault-injection
//! hook: the process `abort()`s (as if SIGKILLed) right after the k-th
//! checkpoint write. The integration tests and the CI `campaign-shard` job
//! use it to prove interrupt/resume determinism.

use paradet_faults::cli::{parse_campaign_flags, reject_unknown, take_switch, take_value};
use paradet_faults::{
    coverage_table, recovery_table, run_campaign, run_campaign_shard, ShardRunOptions, ShardSpec,
    StoreError,
};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: campaignd (--one-shot | --shard i/n) [options]\n\
         \n\
         modes:\n  \
         --one-shot                run the whole campaign in memory, print the coverage table\n  \
         --shard <i/n>             run slice i of an n-way split against --dir\n\
         \n\
         shard options:\n  \
         --dir <dir>               campaign directory (manifest, checkpoints, status, locks)\n  \
         --resume <dir>            like --dir, but continue from the existing checkpoint\n  \
         --checkpoint-every <n>    trials between checkpoints (default 25)\n  \
         --exit-after-checkpoints <k>  abort() after the k-th checkpoint (fault-injection hook)\n\
         \n\
         output:\n  \
         --out <csv>               write the coverage table as CSV (one-shot mode)\n\
         \n\
         campaign config:\n{}",
        paradet_faults::cli::CONFIG_FLAGS_HELP
    );
    std::process::exit(2);
}

fn fail(e: &StoreError) -> ! {
    eprintln!("campaignd: {e}");
    std::process::exit(match e {
        StoreError::FingerprintMismatch { .. } => 3,
        StoreError::Locked(_) => 4,
        StoreError::SchemaVersion { .. } => 6,
        _ => 1,
    });
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_campaign_flags(&mut args);
    let (cfg, _) = match parsed {
        Ok(x) => x,
        Err(e) => {
            eprintln!("campaignd: {e}");
            usage();
        }
    };

    let one_shot = take_switch(&mut args, "--one-shot");
    let shard_arg = take_value(&mut args, "--shard").unwrap_or_else(|e| {
        eprintln!("campaignd: {e}");
        usage();
    });
    let dir_arg = take_value(&mut args, "--dir").unwrap_or_else(|_| usage());
    let resume_arg = take_value(&mut args, "--resume").unwrap_or_else(|_| usage());
    let every: u64 = take_value(&mut args, "--checkpoint-every")
        .unwrap_or_else(|_| usage())
        .map(|v| v.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(25);
    let exit_after: Option<u64> = take_value(&mut args, "--exit-after-checkpoints")
        .unwrap_or_else(|_| usage())
        .map(|v| v.parse().unwrap_or_else(|_| usage()));
    let out = take_value(&mut args, "--out").unwrap_or_else(|_| usage()).map(PathBuf::from);
    if let Err(e) = reject_unknown(&args) {
        eprintln!("campaignd: {e}");
        usage();
    }

    match (one_shot, shard_arg) {
        (true, None) => {
            let result = run_campaign(&cfg);
            // Recovery campaigns render the coverage-by-fault-class table;
            // detection-only campaigns keep the historic coverage table.
            let table = match &cfg.recovery {
                Some(_) => recovery_table(cfg.workload.name(), cfg.fault_kind.name(), &result),
                None => coverage_table(cfg.workload.name(), &result),
            };
            print!("{}", table.render());
            if let Some(path) = out {
                table.write_csv(&path).unwrap_or_else(|e| {
                    eprintln!("campaignd: writing {}: {e}", path.display());
                    std::process::exit(1);
                });
                eprintln!("wrote {}", path.display());
            }
        }
        (false, Some(spec)) => {
            let shard = ShardSpec::parse(&spec).unwrap_or_else(|e| {
                eprintln!("campaignd: --shard: {e}");
                usage();
            });
            let (dir, resume) = match (dir_arg, resume_arg) {
                (Some(d), None) => (PathBuf::from(d), false),
                (None, Some(d)) => (PathBuf::from(d), true),
                _ => {
                    eprintln!("campaignd: --shard needs exactly one of --dir or --resume");
                    usage();
                }
            };
            let opts = ShardRunOptions { shard, checkpoint_every: every, resume };
            let mut checkpoints = 0u64;
            let summary = run_campaign_shard(&dir, &cfg, &opts, |done, total| {
                checkpoints += 1;
                eprintln!("shard {shard}: {done}/{total} trials checkpointed");
                if exit_after == Some(checkpoints) {
                    // Simulate a SIGKILL mid-campaign: no cleanup, no lock
                    // release, no final status — the resume path must cope.
                    eprintln!("shard {shard}: aborting after checkpoint {checkpoints} (--exit-after-checkpoints)");
                    std::process::abort();
                }
            })
            .unwrap_or_else(|e| fail(&e));
            println!(
                "shard {shard} complete: {} trials ({} resumed, {} run) in {}",
                summary.total,
                summary.resumed_from,
                summary.total - summary.resumed_from,
                dir.display()
            );
        }
        _ => {
            eprintln!("campaignd: pass exactly one of --one-shot or --shard i/n");
            usage();
        }
    }
}
