//! `campaign-merge` — folds the shard checkpoints of a campaign directory
//! into the coverage table, byte-identical to a one-shot run of the same
//! campaign.
//!
//! ```text
//! campaign-merge --dir camp/ [--out coverage.csv] [config flags]
//! ```
//!
//! When any campaign config flag is given, the directory's manifest must
//! fingerprint-match the described campaign — merging a directory that
//! belongs to a different campaign (other seed, workload, fault model, or
//! trial count) is refused rather than producing a plausible but wrong
//! table. Without config flags the manifest is trusted as-is.
//!
//! Exit codes: 0 success, 2 usage, 3 config-fingerprint mismatch, 5
//! incomplete shards (the error names which shard to resume), 6 store
//! written by an incompatible schema version, 1 other store errors.

use paradet_faults::cli::{parse_campaign_flags, reject_unknown, take_value};
use paradet_faults::{coverage_table, merge_campaign, recovery_table, StoreError};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: campaign-merge --dir <dir> [--out <csv>] [config flags]\n\
         \n\
         campaign config (optional; when given, the directory's manifest must match):\n{}",
        paradet_faults::cli::CONFIG_FLAGS_HELP
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, explicit) = parse_campaign_flags(&mut args).unwrap_or_else(|e| {
        eprintln!("campaign-merge: {e}");
        usage();
    });
    let Some(dir) = take_value(&mut args, "--dir").unwrap_or_else(|_| usage()).map(PathBuf::from)
    else {
        eprintln!("campaign-merge: --dir is required");
        usage();
    };
    let out = take_value(&mut args, "--out").unwrap_or_else(|_| usage()).map(PathBuf::from);
    if let Err(e) = reject_unknown(&args) {
        eprintln!("campaign-merge: {e}");
        usage();
    }

    let expect = if explicit { Some(&cfg) } else { None };
    let (manifest, result) = merge_campaign(&dir, expect).unwrap_or_else(|e| {
        eprintln!("campaign-merge: {e}");
        std::process::exit(match e {
            StoreError::FingerprintMismatch { .. } => 3,
            StoreError::Incomplete(_) => 5,
            StoreError::SchemaVersion { .. } => 6,
            _ => 1,
        });
    });
    // A recovery campaign (manifest records a policy) merges to the
    // coverage-by-fault-class table, byte-identical to its one-shot; a
    // detection-only campaign keeps the historic coverage table.
    let table = if manifest.recovery != "None" && !manifest.recovery.is_empty() {
        let kind = manifest
            .fault_kind
            .split_whitespace()
            .next()
            .unwrap_or("transient")
            .to_ascii_lowercase();
        recovery_table(&manifest.workload, &kind, &result)
    } else {
        coverage_table(&manifest.workload, &result)
    };
    print!("{}", table.render());
    eprintln!(
        "merged {} shards, {} trials, fingerprint {}",
        manifest.shards,
        result.trials.len(),
        manifest.fingerprint
    );
    if let Some(path) = out {
        table.write_csv(&path).unwrap_or_else(|e| {
            eprintln!("campaign-merge: writing {}: {e}", path.display());
            std::process::exit(1);
        });
        eprintln!("wrote {}", path.display());
    }
}
