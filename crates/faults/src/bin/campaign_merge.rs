//! `campaign-merge` — folds the shard checkpoints of a campaign directory
//! into the coverage table, byte-identical to a one-shot run of the same
//! campaign.
//!
//! ```text
//! campaign-merge --dir camp/ [--out coverage.csv] [config flags]
//! campaign-merge --partial --dir camp/   # degraded campaigns: explicit accounting
//! ```
//!
//! When any campaign config flag is given, the directory's manifest must
//! fingerprint-match the described campaign — merging a directory that
//! belongs to a different campaign (other seed, workload, fault model, or
//! trial count) is refused rather than producing a plausible but wrong
//! table. Without config flags the manifest is trusted as-is.
//!
//! The strict merge refuses incomplete campaigns (exit 5). `--partial` is
//! the explicit opt-out — the hand-off target when a supervised run
//! quarantined a shard: it renders a per-shard completeness table (done /
//! total / state, naming `degraded`, `missing`, and `corrupt` shards)
//! plus the coverage over the trials that *do* exist, with a `PARTIAL`
//! title whenever anything is missing so a truncated table can never pass
//! as a full campaign.
//!
//! Exit codes (the shared table in `paradet_faults::cli::exit`): 0
//! success, 2 usage, 3 config-fingerprint mismatch, 5 incomplete shards
//! without `--partial` (the error names which shard to resume), 6 store
//! written by an incompatible schema version, 1 other store errors.

use paradet_faults::cli::{exit, parse_campaign_flags, reject_unknown, take_switch, take_value};
use paradet_faults::{
    completeness_table, merge_campaign, merge_campaign_partial, merged_table, partial_result_table,
    StoreError,
};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: campaign-merge --dir <dir> [--partial] [--out <csv>] [config flags]\n\
         \n  \
         --partial                 merge whatever checkpoints exist, rendering per-shard\n                            completeness instead of refusing incomplete campaigns\n\
         \n\
         campaign config (optional; when given, the directory's manifest must match):\n{}",
        paradet_faults::cli::CONFIG_FLAGS_HELP
    );
    std::process::exit(exit::USAGE);
}

fn fail(e: &StoreError) -> ! {
    eprintln!("campaign-merge: {e}");
    std::process::exit(exit::code_for(e));
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, explicit) = parse_campaign_flags(&mut args).unwrap_or_else(|e| {
        eprintln!("campaign-merge: {e}");
        usage();
    });
    let partial = take_switch(&mut args, "--partial");
    let Some(dir) = take_value(&mut args, "--dir").unwrap_or_else(|_| usage()).map(PathBuf::from)
    else {
        eprintln!("campaign-merge: --dir is required");
        usage();
    };
    let out = take_value(&mut args, "--out").unwrap_or_else(|_| usage()).map(PathBuf::from);
    if let Err(e) = reject_unknown(&args) {
        eprintln!("campaign-merge: {e}");
        usage();
    }

    let expect = if explicit { Some(&cfg) } else { None };
    if partial {
        let merge = merge_campaign_partial(&dir, expect).unwrap_or_else(|e| fail(&e));
        print!("{}", completeness_table(&merge).render());
        let table = partial_result_table(&merge);
        print!("{}", table.render());
        eprintln!(
            "partial merge: {}/{} grid points across {} shards, fingerprint {}",
            merge.completed, merge.grid, merge.manifest.shards, merge.manifest.fingerprint
        );
        if let Some(path) = out {
            table.write_csv(&path).unwrap_or_else(|e| {
                eprintln!("campaign-merge: writing {}: {e}", path.display());
                std::process::exit(exit::STORE);
            });
            eprintln!("wrote {}", path.display());
        }
        return;
    }

    let (manifest, result) = merge_campaign(&dir, expect).unwrap_or_else(|e| fail(&e));
    // A recovery campaign (manifest records a policy) merges to the
    // coverage-by-fault-class table, byte-identical to its one-shot; a
    // detection-only campaign keeps the historic coverage table.
    let table = merged_table(&manifest, &result);
    print!("{}", table.render());
    eprintln!(
        "merged {} shards, {} trials, fingerprint {}",
        manifest.shards,
        result.trials.len(),
        manifest.fingerprint
    );
    if let Some(path) = out {
        table.write_csv(&path).unwrap_or_else(|e| {
            eprintln!("campaign-merge: writing {}: {e}", path.display());
            std::process::exit(exit::STORE);
        });
        eprintln!("wrote {}", path.display());
    }
}
